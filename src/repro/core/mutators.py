"""The engine's write surface, split from the read facade.

:class:`EngineMutationMixin` carries the six store mutators, the
full-invalidation fallback and the ``without_products`` what-if
constructor.  Post-commit maintenance (index upkeep, scoped cache
invalidation, obs accounting) lives in :func:`repro.core.invalidation.
apply_mutation`; the mixin only sequences store commit -> maintenance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.invalidation import apply_mutation, invalidate_all
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.store.base import ProductStore

__all__ = ["EngineMutationMixin"]


class EngineMutationMixin:
    """Mutation methods of :class:`~repro.core.engine.WhyNotEngine`.

    Every mutator runs under the engine's write gate: the store commit
    and the post-commit maintenance (index upkeep, cache scoping, obs
    accounting) are one atomic step with respect to concurrent plan
    executions — a reader either sees the pre-mutation engine entirely
    or the post-maintenance one, never a half-applied state.
    """

    def insert_products(self, points) -> np.ndarray:
        """Append product rows; returns their new positions."""
        with self.gate.write():
            mutation = self._product_store.insert(points)
            return apply_mutation(
                self, mutation, product=True, out=mutation.positions
            )

    def delete_products(self, positions) -> np.ndarray:
        """Remove product rows and compact; returns the old-to-new
        position mapping (``-1`` for deleted rows), the same contract
        :meth:`without_products` has always used."""
        with self.gate.write():
            target = np.unique(np.asarray(list(positions), dtype=np.int64))
            n = self._product_store.size
            if (
                target.size == n
                and target.size
                and 0 <= target[0]
                and target[-1] < n
            ):
                raise EmptyDatasetError("cannot delete every product")
            mutation = self._product_store.delete(target)
            return apply_mutation(
                self, mutation, product=True, out=mutation.mapping
            )

    def update_products(self, positions, points) -> np.ndarray:
        """Replace the coordinates of existing product rows; returns the
        (ascending) updated positions."""
        with self.gate.write():
            mutation = self._product_store.update(positions, points)
            return apply_mutation(
                self, mutation, product=True, out=mutation.positions
            )

    def insert_customers(self, points) -> np.ndarray:
        """Append customer rows (bichromatic engines only); returns their
        new positions."""
        self._require_bichromatic()
        with self.gate.write():
            mutation = self._customer_store.insert(points)
            return apply_mutation(
                self, mutation, product=False, out=mutation.positions
            )

    def delete_customers(self, positions) -> np.ndarray:
        """Remove customer rows and compact (bichromatic engines only);
        returns the old-to-new position mapping."""
        self._require_bichromatic()
        with self.gate.write():
            mutation = self._customer_store.delete(positions)
            return apply_mutation(
                self, mutation, product=False, out=mutation.mapping
            )

    def update_customers(self, positions, points) -> np.ndarray:
        """Move existing customer rows (bichromatic engines only);
        returns the (ascending) updated positions."""
        self._require_bichromatic()
        with self.gate.write():
            mutation = self._customer_store.update(positions, points)
            return apply_mutation(
                self, mutation, product=False, out=mutation.positions
            )

    def _require_bichromatic(self) -> None:
        if self.monochromatic:
            raise InvalidParameterError(
                "monochromatic engines share one store for both roles; "
                "use the product mutators"
            )

    def invalidate_caches(self) -> None:
        """Drop every derived result cache (RSL, safe regions, approx
        stores, DSL cache) — the unscoped fallback after a mutation,
        counted under ``cache.evicted_full``."""
        with self.gate.write():
            invalidate_all(self)

    def without_products(self, positions: Sequence[int]):
        """A what-if engine with the given products deleted.

        Directly supports the paper's first aspect: deleting the ``Λ``
        culprits admits the why-not point (Lemma 1); this builds the
        counterfactual market so the claim can be *checked*, e.g.::

            culprits = engine.explain(c_t, q).culprit_positions
            reduced, mapping = engine.without_products(culprits)
            assert reduced.is_member(mapping[c_t], q)

        Returns the new engine plus a position-mapping array: old product
        position -> new position (``-1`` for deleted rows).  In the
        monochromatic setting the customer matrix shrinks identically.
        """
        drop = {int(p) for p in positions}
        for position in drop:
            if not 0 <= position < self.products.shape[0]:
                raise InvalidParameterError(
                    f"product position {position} out of range"
                )
        if len(drop) == self.products.shape[0]:
            raise EmptyDatasetError("cannot delete every product")
        # A throwaway store runs the compacting delete: the keep-set and
        # mapping come out of its vectorised mask arithmetic, with the
        # exact mapping contract this method has always returned.
        scratch = ProductStore(self.products)
        mutation = scratch.delete(sorted(drop))
        # The reduced engine starts with empty caches (including the DSL
        # cache): deleting products can change every customer's dynamic
        # skyline, so no parent entry is reusable.
        reduced = type(self)(
            scratch.matrix,
            customers=None if self.monochromatic else self.customers,
            backend=self._backend,
            config=self.config,
            weights=self._weights,
            bounds=self.bounds,
        )
        return reduced, mutation.mapping
