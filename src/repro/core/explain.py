"""Aspect 1 of the why-not semantics: the explanation itself.

Why is ``c_t`` not in ``RSL(q)``?  Because the window query centred at
``c_t`` returns a non-empty ``Λ``: the products the customer finds more
interesting than ``q``.  Deleting ``Λ`` from the product set would admit
``c_t`` (Lemma 1) — the paper considers this aspect trivial to compute and
so do we, but it is the entry point of the whole pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.core.answer import Explanation
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex
from repro.skyline.window import lambda_set

__all__ = ["explain_why_not"]


def explain_why_not(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> Explanation:
    """Compute the ``Λ`` explanation for ``why_not`` w.r.t. ``query``.

    Parameters
    ----------
    index:
        Spatial index over the product set ``P``.
    why_not:
        The customer ``c_t`` asking the why-not question.
    query:
        The reverse-skyline query product ``q``.
    policy:
        Dominance policy of the window test (see DESIGN.md §2).
    exclude:
        Index positions excluded from the window (self-exclusion in the
        monochromatic setting).
    weights:
        Optional preference weights (:mod:`repro.prefs`) restricting the
        window test to their support dimensions.
    """
    c = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    positions = lambda_set(index, c, q, policy, exclude, weights)
    return Explanation(
        why_not=c,
        query=q,
        culprit_positions=positions,
        culprits=index.points[positions] if positions.size else np.empty((0, index.dim)),
    )
