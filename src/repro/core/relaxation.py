"""Safe-region relaxation analysis (the Section V.B remark, made concrete).

The paper notes that the safe region "can be truncated/expanded ... to
achieve certain flexibility", at the price of "losing a few existing
customers as a side effect".  This module quantifies that trade:

* :func:`leave_one_out_regions` — for each reverse-skyline member, the
  region available if the company accepted losing exactly that customer
  (the intersection of everyone else's anti-dominance regions);
* :func:`relaxation_analysis` — the members ranked by how much
  repositioning area sacrificing them would buy, the concrete decision
  support a vendor needs before expanding the safe region.

Every returned region is verified-safe for the remaining members by
construction (it is their Lemma-2 intersection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.engine import WhyNotEngine
from repro.core.safe_region import SafeRegion, anti_dominance_region, compute_safe_region
from repro.geometry.point import as_point

__all__ = ["RelaxationOption", "leave_one_out_regions", "relaxation_analysis"]


@dataclass(frozen=True)
class RelaxationOption:
    """One candidate sacrifice: drop this member, gain this much area."""

    member_position: int
    region: SafeRegion
    area: float
    area_gain: float

    def __repr__(self) -> str:
        return (
            f"RelaxationOption(drop customer {self.member_position}: "
            f"area {self.area:g}, gain {self.area_gain:g})"
        )


def leave_one_out_regions(
    engine: WhyNotEngine, query: Sequence[float]
) -> dict[int, SafeRegion]:
    """The safe region obtained by dropping each member in turn.

    Maps member position -> ``SR(q)`` computed over the remaining
    members.  With zero or one member the answer degenerates to the full
    universe for the single droppable member.
    """
    q = as_point(query, dim=engine.dim)
    members = engine.reverse_skyline(q)
    regions: dict[int, SafeRegion] = {}
    # Sharing the engine's DSL cache turns the n leave-one-out rebuilds
    # (each intersecting n-1 member regions) from O(n^2) dynamic-skyline
    # computations into n cache fills plus pure region algebra.
    for dropped in members.tolist():
        remaining = np.asarray(
            [m for m in members.tolist() if m != dropped], dtype=np.int64
        )
        regions[int(dropped)] = compute_safe_region(
            engine.index,
            engine.customers,
            q,
            remaining,
            engine._geometry_bounds(q),
            config=engine.config,
            self_exclude=engine.monochromatic,
            dsl_cache=engine.dsl_cache,
        )
    return regions


def relaxation_analysis(
    engine: WhyNotEngine, query: Sequence[float]
) -> list[RelaxationOption]:
    """Rank the reverse-skyline members by the area their loss would buy.

    Returns options sorted by decreasing area gain over the exact safe
    region; an empty list when there is nobody to lose.
    """
    q = as_point(query, dim=engine.dim)
    base_area = engine.safe_region(q).area()
    options = [
        RelaxationOption(
            member_position=member,
            region=region,
            area=region.area(),
            area_gain=region.area() - base_area,
        )
        for member, region in leave_one_out_regions(engine, q).items()
    ]
    options.sort(key=lambda option: -option.area_gain)
    return options
