"""Engine-level cache of per-customer dynamic-skyline structures.

Profiling the MWQ pipeline (Fig. 15 of the paper) shows the dominant cost
is recomputing, for every ``compute_safe_region`` / ``modify_both`` call,
each member's dynamic skyline ``DSL(c)`` and its staircase decomposition —
structures that depend only on the customer and the product set, never on
the query.  Influence-set systems make the same observation (Arvanitis &
Deligiannakis; Islam et al.) and cache them per customer.

:class:`DSLCache` stores two layers, both keyed by customer position:

* the **threshold matrix** ``|c - s|`` over ``DSL(c)`` (bounds-independent);
* the simplified **staircase region** built from it (keyed additionally by
  the clipping bounds, which differ only for queries outside the data
  universe).

Entries are reused across ``safe_region``, ``modify_both``,
``answer_why_not_batch``, the approximate-DSL store and the leave-one-out
relaxation analysis.  The cache is *read-through*: results are identical
with or without it.  It must be invalidated (or simply not shared) when
the product set changes — ``WhyNotEngine.without_products`` builds the
reduced engine with a fresh cache for exactly this reason.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.core.safe_region import staircase_boxes
from repro.obs.stats import CounterBackedStats
from repro.geometry.box import Box
from repro.geometry.region import BoxRegion
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.kernels.parallel import parallel_map_chunks
from repro.skyline.dynamic import dynamic_skyline_indices

__all__ = ["DSLCache", "DSLCacheStats"]


class DSLCacheStats(CounterBackedStats):
    """Hit/miss counters of one :class:`DSLCache`.

    Reset contract: hit/miss counters describe the *current generation*
    of cached content — a full :meth:`DSLCache.invalidate` rolls them
    back to zero (the old numbers describe entries that no longer
    exist), while ``invalidations`` is lifetime-monotonic and counts
    every invalidation call, full or partial.  Partial invalidations do
    not roll the counters: the surviving entries' history stays valid.
    """

    _INT_FIELDS = (
        "threshold_hits",
        "threshold_misses",
        "region_hits",
        "region_misses",
        "invalidations",
    )

    @property
    def hits(self) -> int:
        return self.threshold_hits + self.region_hits

    @property
    def misses(self) -> int:
        return self.threshold_misses + self.region_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def hit_miss(self) -> tuple[int, int]:
        """``(hits, misses)`` read straight off the counters — one call
        instead of four property round-trips, for the safe-region hot
        path that snapshots the ledger around every construction."""
        c = self._counters
        return (
            c["threshold_hits"].value + c["region_hits"].value,
            c["threshold_misses"].value + c["region_misses"].value,
        )

    def roll(self) -> dict:
        """Snapshot, then zero the hit/miss counters (generation change).

        ``invalidations`` is deliberately preserved — it counts lifetime
        events, not current-generation content.
        """
        snap = self.snapshot()
        for name in (
            "threshold_hits",
            "threshold_misses",
            "region_hits",
            "region_misses",
        ):
            self._counters[name].value = 0
        return snap


class DSLCache:
    """Per-customer dynamic-skyline threshold and staircase-region cache.

    Parameters
    ----------
    index:
        Spatial index over the products ``P`` (the cache is only valid
        for this exact product set).
    customers:
        ``(m, d)`` customer matrix the positions refer to.
    config:
        Supplies ``sort_dim`` (staircase sort dimension) and the default
        ``n_jobs`` of :meth:`precompute`.
    self_exclude:
        Monochromatic convention: customer ``j`` is excluded from its own
        dynamic-skyline computation.  Must match the engine's convention —
        entries are keyed by position only.
    """

    def __init__(
        self,
        index: SpatialIndex,
        customers: np.ndarray,
        config: WhyNotConfig | None = None,
        self_exclude: bool = False,
    ) -> None:
        self.index = index
        self.customers = np.asarray(customers, dtype=np.float64)
        self.config = config or WhyNotConfig()
        self.self_exclude = self_exclude
        self.stats = DSLCacheStats()
        self._thresholds: dict[int, np.ndarray] = {}
        self._regions: dict[tuple[int, bytes, bytes], BoxRegion] = {}
        # Direct counter references for the per-lookup increments: a
        # bound ``Counter.inc`` is measurably cheaper than the property
        # round-trip, and the lookups sit on the safe-region hot path.
        # ``roll()``/``reset()`` mutate the counters in place, so the
        # references stay valid for the cache's lifetime.
        counters = self.stats.counters()
        self._threshold_hit_counter = counters["threshold_hits"]
        self._threshold_miss_counter = counters["threshold_misses"]
        self._region_hit_counter = counters["region_hits"]
        self._region_miss_counter = counters["region_misses"]

    def __len__(self) -> int:
        return len(self._thresholds)

    def entry_count(self) -> int:
        """Total cached entries across both layers (thresholds + regions)."""
        return len(self._thresholds) + len(self._regions)

    def cached_positions(self) -> list[int]:
        """Positions with a cached threshold matrix (no stats traffic).

        The scoped-invalidation pass iterates exactly these: uncached
        customers have nothing to evict, and every region entry's
        position also has a threshold entry by the read-through layering.
        """
        return list(self._thresholds)

    def cached_thresholds(self, position: int) -> np.ndarray | None:
        """The cached threshold matrix, or ``None`` — never computes and
        never counts a hit/miss (for invalidation-side inspection only)."""
        return self._thresholds.get(int(position))

    def __repr__(self) -> str:
        return (
            f"DSLCache({len(self._thresholds)} thresholds, "
            f"{len(self._regions)} regions, hit_rate={self.stats.hit_rate:.2f})"
        )

    # ------------------------------------------------------------------
    # Lookups (read-through)
    # ------------------------------------------------------------------
    def thresholds(self, position: int) -> np.ndarray:
        """The ``(|DSL(c)|, d)`` distance matrix of customer ``position``."""
        position = int(position)
        cached = self._thresholds.get(position)
        if cached is not None:
            self._threshold_hit_counter.inc()
            return cached
        self._threshold_miss_counter.inc()
        computed = self._compute_thresholds(position)
        self._thresholds[position] = computed
        return computed

    def region(self, position: int, bounds: Box) -> BoxRegion:
        """The simplified staircase anti-dominance region of ``position``
        clipped to ``bounds`` (the Fig. 10 decomposition in 2-D, the
        conservative variant for higher dimensions)."""
        position = int(position)
        key = (position, bounds.lo.tobytes(), bounds.hi.tobytes())
        cached = self._regions.get(key)
        if cached is not None:
            self._region_hit_counter.inc()
            return cached
        self._region_miss_counter.inc()
        boxes = staircase_boxes(
            self.customers[position],
            self.thresholds(position),
            bounds,
            self.config.sort_dim,
        )
        region = BoxRegion(boxes, dim=self.index.dim).simplify()
        self._regions[key] = region
        return region

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def precompute(
        self,
        positions: Sequence[int] | None = None,
        n_jobs: int | None = None,
    ) -> None:
        """Materialise threshold entries for ``positions`` (all customers
        when None) — the offline pass, embarrassingly parallel over
        customers.  Workers compute side-effect free and the dict is
        populated afterwards, so concurrent readers never observe a
        half-written entry."""
        targets = [
            int(position)
            for position in (
                range(self.customers.shape[0]) if positions is None else positions
            )
            if int(position) not in self._thresholds
        ]
        if n_jobs is None:
            n_jobs = self.config.n_jobs
        computed = parallel_map_chunks(
            self._compute_thresholds, targets, n_jobs=n_jobs
        )
        for position, thresholds in zip(targets, computed):
            self._thresholds[position] = thresholds
        self.stats.threshold_misses += len(targets)

    def invalidate(self, positions: Sequence[int] | None = None) -> None:
        """Drop cached entries — all of them, or those of ``positions``.

        Required whenever the product set changes (every customer's DSL
        may shift); engines built by ``without_products`` get a fresh
        cache instead of sharing the parent's.

        Stats contract: a *full* invalidation starts a new content
        generation, so the hit/miss counters roll back to zero
        (``DSLCacheStats.roll``) — they would otherwise accumulate
        across unrelated product sets and misreport hit rates.  Partial
        invalidations keep the counters: surviving entries' history is
        still meaningful.  ``stats.invalidations`` always increments.
        """
        if positions is None:
            self._thresholds.clear()
            self._regions.clear()
            self.stats.roll()
        else:
            self._evict_entries(positions)
        self.stats.invalidations += 1

    def evict(self, positions: Sequence[int]) -> int:
        """Scoped eviction: drop the entries of ``positions`` and return
        how many entries (threshold matrices + regions) were removed.

        Behaviour equals partial :meth:`invalidate` — surviving entries
        keep their hit/miss history — but the count feeds the engine's
        ``cache.evicted_scoped`` accounting.
        """
        evicted = self._evict_entries(positions)
        self.stats.invalidations += 1
        return evicted

    def remap(self, mapping: np.ndarray) -> int:
        """Renumber entries after a compacting delete; returns how many
        entries were dropped because their customer row was deleted.

        ``mapping`` is the old-to-new position array of the store delete
        contract.  Values are untouched: a surviving customer's threshold
        matrix and staircase regions do not depend on its row number.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        dropped = 0
        thresholds: dict[int, np.ndarray] = {}
        for position, matrix in self._thresholds.items():
            new_position = int(mapping[position]) if position < mapping.size else -1
            if new_position >= 0:
                thresholds[new_position] = matrix
            else:
                dropped += 1
        regions: dict[tuple[int, bytes, bytes], BoxRegion] = {}
        for (position, lo, hi), region in self._regions.items():
            new_position = int(mapping[position]) if position < mapping.size else -1
            if new_position >= 0:
                regions[(new_position, lo, hi)] = region
            else:
                dropped += 1
        self._thresholds = thresholds
        self._regions = regions
        return dropped

    def rebind(self, customers: np.ndarray) -> None:
        """Point the cache at a new customer matrix (post-mutation).

        The caller is responsible for having evicted/remapped entries
        whose customers moved; rebinding itself validates nothing.
        """
        self.customers = np.asarray(customers, dtype=np.float64)

    def _evict_entries(self, positions: Sequence[int]) -> int:
        drop = {int(p) for p in positions}
        evicted = 0
        for position in drop:
            if self._thresholds.pop(position, None) is not None:
                evicted += 1
        for key in [k for k in self._regions if k[0] in drop]:
            del self._regions[key]
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compute_thresholds(self, position: int) -> np.ndarray:
        customer = self.customers[position]
        exclude = (position,) if self.self_exclude else ()
        dsl = dynamic_skyline_indices(self.index.points, customer, exclude)
        return (
            to_query_space(self.index.points[dsl], customer)
            if dsl.size
            else np.empty((0, self.index.dim))
        )
