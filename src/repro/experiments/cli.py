"""Command-line harness: regenerate any table or figure of the paper.

Examples::

    repro-whynot table3                  # scaled-down default (fast)
    repro-whynot table3 --full           # the paper's 50K/100K/200K rows
    repro-whynot table5 --sizes 5000
    repro-whynot fig14 --seed 3
    repro-whynot all --sizes 2000

Scaled-down sizes reproduce the paper's *shapes* in seconds; ``--full``
runs the original sizes (minutes — exactly the point of Figure 15).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import figures, tables
from repro.experiments.reporting import format_block, render_figure, render_tables

__all__ = ["main", "build_parser"]

# Scaled-down defaults keep every experiment under ~a minute on a laptop.
FAST_CARDB_SIZES = (2_000, 4_000, 8_000)
FAST_SYNTH_SIZES = (4_000, 8_000)
FULL_CARDB_SIZES = (50_000, 100_000, 200_000)
FULL_SYNTH_SIZES = (100_000, 200_000)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-whynot",
        description=(
            "Regenerate the tables and figures of 'On Answering Why-not "
            "Questions in Reverse Skyline Queries' (ICDE 2013)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table3",
            "table4",
            "table5",
            "table6",
            "fig14",
            "fig15",
            "fig17",
            "validate",
            "ablation",
            "run",
            "all",
        ],
        help="which table/figure to regenerate ('validate' checks every "
        "qualitative claim of Section VI and exits non-zero on failure)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="dataset sizes (rows); overrides the fast defaults",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's dataset sizes (50K-200K); slow by design",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--backend",
        choices=["scan", "rtree"],
        default="scan",
        help="spatial index backend",
    )
    parser.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[10, 20],
        help="approximation parameter(s) for table5/table6/fig17",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append ASCII charts to the figure outputs",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="also write the raw text output to this file",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="for 'run': archive the raw experiment records as JSON",
    )
    return parser


def _sizes(args: argparse.Namespace, cardb: bool) -> tuple[int, ...]:
    if args.sizes:
        return tuple(args.sizes)
    if args.full:
        return FULL_CARDB_SIZES if cardb else FULL_SYNTH_SIZES
    return FAST_CARDB_SIZES if cardb else FAST_SYNTH_SIZES


def _run(args: argparse.Namespace, experiment: str) -> str:
    seed = args.seed
    backend = args.backend
    if experiment == "table3":
        result = tables.table3(_sizes(args, True), seed=seed, backend=backend)
        return format_block(
            "Table III — quality of results on (simulated) CarDB",
            render_tables(result),
        )
    if experiment == "table4":
        result = tables.table4(_sizes(args, False), seed=seed, backend=backend)
        return format_block(
            "Table IV — quality of results on synthetic datasets",
            render_tables(result),
        )
    if experiment == "table5":
        ks = tuple(args.k)
        result = tables.table5(
            _sizes(args, True)[-2:], ks=ks, seed=seed, backend=backend
        )
        return format_block(
            "Table V — Approx-MWQ quality on (simulated) CarDB",
            render_tables(result, approx_ks=ks),
        )
    if experiment == "table6":
        ks = tuple(args.k[:1])
        result = tables.table6(
            _sizes(args, False), ks=ks, seed=seed, backend=backend
        )
        return format_block(
            "Table VI — Approx-MWQ quality on synthetic datasets",
            render_tables(result, approx_ks=ks),
        )
    if experiment == "fig14":
        series = figures.figure14(_sizes(args, True), seed=seed, backend=backend)
        body = render_figure({"CarDB": series})
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + ascii_log_chart(series, title="area vs |RSL|")
        return format_block(
            "Figure 14 — RSL size vs safe-region area (fraction of universe)",
            body,
        )
    if experiment == "fig15":
        panels = figures.figure15(
            cardb_sizes=_sizes(args, True)[-1:],
            synthetic_size=_sizes(args, False)[0],
            seed=seed,
            backend=backend,
        )
        body = render_figure(panels)
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + "\n".join(
                ascii_log_chart(series, title=f"{name}: time (s) vs |RSL|")
                for name, series in panels.items()
            )
        return format_block(
            "Figure 15 — execution time (s) of MWP, MQP, SR, MWQ",
            body,
        )
    if experiment == "fig17":
        panels = figures.figure17(
            cardb_sizes=_sizes(args, True)[-1:],
            synthetic_size=_sizes(args, False)[0],
            k=args.k[0],
            seed=seed,
            backend=backend,
        )
        body = render_figure(panels)
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + "\n".join(
                ascii_log_chart(series, title=f"{name}: time (s) vs |RSL|")
                for name, series in panels.items()
            )
        return format_block(
            "Figure 17 — execution time (s) with the approximate safe region",
            body,
        )
    if experiment == "validate":
        return _validate(args)
    if experiment == "ablation":
        return _ablation(args)
    if experiment == "run":
        return _run_archive(args)
    raise ValueError(f"unknown experiment {experiment!r}")


def _run_archive(args: argparse.Namespace) -> str:
    """Run the full protocol over every default dataset and archive the
    raw records (JSON via --json), plus a one-line summary per dataset."""
    from repro.data.cardb import generate_cardb
    from repro.data.io import save_results_json
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.experiments.runner import run_dataset

    datasets = [generate_cardb(_sizes(args, True)[-1], seed=args.seed)]
    synth_size = _sizes(args, False)[0]
    for j, kind in enumerate(("UN", "CO", "AC")):
        datasets.append(SYNTHETIC_GENERATORS[kind](synth_size, seed=args.seed + j))

    results = []
    lines = []
    for dataset in datasets:
        result = run_dataset(
            dataset,
            targets=tuple(range(1, 16)),
            approx_ks=tuple(args.k[:1]),
            seed=args.seed,
            backend=args.backend,
            measure_area=True,
        )
        results.append(result)
        lines.append(
            f"{dataset.name}: {len(result.records)} queries, "
            f"|RSL| in {[r.rsl_size for r in result.sorted_records()]}"
        )
    if args.json:
        save_results_json(results, args.json)
        lines.append(f"records archived to {args.json}")
    return format_block("Experiment run", "\n".join(lines))


def _ablation(args: argparse.Namespace) -> str:
    """Run the backend / pruning / k-sweep ablation studies."""
    from repro.data.cardb import generate_cardb
    from repro.experiments.ablation import (
        ablation_backends,
        ablation_k_sweep,
        ablation_pruning,
    )

    size = _sizes(args, True)[-1]
    dataset = generate_cardb(size, seed=args.seed)
    sections = []

    rows = ablation_backends(dataset, seed=args.seed)
    lines = [f"{'backend':>8} {'seconds':>10} {'node acc.':>10} {'pt cmp.':>12}"]
    lines += [
        f"{r['backend']:>8} {r['seconds']:>10.4f} {r['node_accesses']:>10} "
        f"{r['point_comparisons']:>12}"
        for r in rows
    ]
    sections.append("Window-query backends\n" + "\n".join(lines))

    rows = ablation_pruning(dataset, seed=args.seed)
    lines = [f"{'method':>8} {'seconds':>10} {'window queries':>15}"]
    lines += [
        f"{r['method']:>8} {r['seconds']:>10.4f} {r['window_queries']:>15}"
        for r in rows
    ]
    sections.append("Reverse-skyline pruning (BBRS)\n" + "\n".join(lines))

    rows = ablation_k_sweep(dataset, ks=tuple(args.k), seed=args.seed)
    lines = [f"{'k':>6} {'mean cost':>12} {'area kept':>10} {'seconds':>9}"]
    lines += [
        f"{str(r['k']):>6} {r['mean_cost']:>12.6f} {r['mean_area_kept']:>9.1%} "
        f"{r['seconds']:>9.3f}"
        for r in rows
    ]
    sections.append("Approximation parameter sweep\n" + "\n".join(lines))

    return format_block(
        f"Ablation studies over {dataset.name}", "\n\n".join(sections)
    )


def _validate(args: argparse.Namespace) -> str:
    """Run one seeded experiment and check every Section-VI claim."""
    from repro.data.cardb import generate_cardb
    from repro.experiments.runner import run_dataset
    from repro.experiments.validation import run_all_checks

    size = _sizes(args, True)[-1]
    dataset = generate_cardb(size, seed=args.seed)
    result = run_dataset(
        dataset,
        targets=tuple(range(1, 16)),
        approx_ks=tuple(args.k[:1]),
        seed=args.seed,
        backend=args.backend,
        measure_area=True,
    )
    report = run_all_checks(result.records)
    header = (
        f"Validation over {dataset.name} "
        f"({len(result.records)} why-not queries, seed {args.seed})"
    )
    return format_block(header, report.render())


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    experiments = (
        ["table3", "table4", "table5", "table6", "fig14", "fig15", "fig17"]
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks: list[str] = []
    failed = False
    for experiment in experiments:
        start = time.perf_counter()
        output = _run(args, experiment)
        elapsed = time.perf_counter() - start
        output += f"[{experiment} regenerated in {elapsed:.1f}s]\n\n"
        sys.stdout.write(output)
        chunks.append(output)
        if experiment == "validate" and "FAIL" in output:
            failed = True
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("".join(chunks))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
