"""Command-line harness: regenerate any table or figure of the paper.

Examples::

    repro-whynot table3                  # scaled-down default (fast)
    repro-whynot table3 --full           # the paper's 50K/100K/200K rows
    repro-whynot table5 --sizes 5000
    repro-whynot fig14 --seed 3
    repro-whynot all --sizes 2000

Scaled-down sizes reproduce the paper's *shapes* in seconds; ``--full``
runs the original sizes (minutes — exactly the point of Figure 15).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import figures, tables
from repro.experiments.reporting import format_block, render_figure, render_tables

__all__ = ["main", "build_parser"]

# Scaled-down defaults keep every experiment under ~a minute on a laptop.
FAST_CARDB_SIZES = (2_000, 4_000, 8_000)
FAST_SYNTH_SIZES = (4_000, 8_000)
FULL_CARDB_SIZES = (50_000, 100_000, 200_000)
FULL_SYNTH_SIZES = (100_000, 200_000)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-whynot",
        description=(
            "Regenerate the tables and figures of 'On Answering Why-not "
            "Questions in Reverse Skyline Queries' (ICDE 2013)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table3",
            "table4",
            "table5",
            "table6",
            "fig14",
            "fig15",
            "fig17",
            "validate",
            "updates",
            "ablation",
            "run",
            "trace",
            "explain",
            "shard",
            "prune",
            "obs",
            "serve",
            "weighted",
            "all",
        ],
        help="which table/figure to regenerate ('validate' checks every "
        "qualitative claim of Section VI and exits non-zero on failure; "
        "'updates' runs a mixed insert/delete/update churn and asserts the "
        "incrementally maintained engine stays bit-identical to a rebuild; "
        "'trace' runs an instrumented workload and prints the span tree; "
        "'explain' prints the planner's EXPLAIN ANALYZE tree for every "
        "why-not surface; 'shard' answers the same workload through the "
        "single-process and sharded execution paths and asserts the "
        "answers agree bit-for-bit; 'prune' does the same for the "
        "tile-summary pruned kernels, including across dataset "
        "mutations, and asserts the prune counter balance invariant; "
        "'obs' runs a journaled workload, prints the per-query journal "
        "summary and the cost-drift sentinel table, and asserts the "
        "sharded worker-telemetry counter balance; 'serve' starts the "
        "asyncio service in-process, fires concurrent HTTP clients "
        "through a mixed read/write workload and asserts every served "
        "response is bit-identical to a direct engine call at its "
        "served epoch; 'weighted' sweeps preference-weight shapes — "
        "unit, skewed, partial support — over every query surface and "
        "asserts each answer matches the brute-force weighted oracle "
        "exactly, with unit weights bit-identical to the unweighted "
        "engine)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="dataset sizes (rows); overrides the fast defaults",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's dataset sizes (50K-200K); slow by design",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--backend",
        choices=["scan", "rtree"],
        default="scan",
        help="spatial index backend",
    )
    parser.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[10, 20],
        help="approximation parameter(s) for table5/table6/fig17",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append ASCII charts to the figure outputs",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="also write the raw text output to this file",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="for 'run': archive the raw experiment records as JSON",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run engines with the observability layer on (nested spans + "
        "work counters); implied by the 'trace' experiment, honoured by "
        "'run' and 'validate'",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the observability export (repro.obs/2 JSON: span tree, "
        "counters, query journal, environment provenance) to this file",
    )
    return parser


def _sizes(args: argparse.Namespace, cardb: bool) -> tuple[int, ...]:
    if args.sizes:
        return tuple(args.sizes)
    if args.full:
        return FULL_CARDB_SIZES if cardb else FULL_SYNTH_SIZES
    return FAST_CARDB_SIZES if cardb else FAST_SYNTH_SIZES


def _run(args: argparse.Namespace, experiment: str) -> str:
    seed = args.seed
    backend = args.backend
    if experiment == "table3":
        result = tables.table3(_sizes(args, True), seed=seed, backend=backend)
        return format_block(
            "Table III — quality of results on (simulated) CarDB",
            render_tables(result),
        )
    if experiment == "table4":
        result = tables.table4(_sizes(args, False), seed=seed, backend=backend)
        return format_block(
            "Table IV — quality of results on synthetic datasets",
            render_tables(result),
        )
    if experiment == "table5":
        ks = tuple(args.k)
        result = tables.table5(
            _sizes(args, True)[-2:], ks=ks, seed=seed, backend=backend
        )
        return format_block(
            "Table V — Approx-MWQ quality on (simulated) CarDB",
            render_tables(result, approx_ks=ks),
        )
    if experiment == "table6":
        ks = tuple(args.k[:1])
        result = tables.table6(
            _sizes(args, False), ks=ks, seed=seed, backend=backend
        )
        return format_block(
            "Table VI — Approx-MWQ quality on synthetic datasets",
            render_tables(result, approx_ks=ks),
        )
    if experiment == "fig14":
        series = figures.figure14(_sizes(args, True), seed=seed, backend=backend)
        body = render_figure({"CarDB": series})
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + ascii_log_chart(series, title="area vs |RSL|")
        return format_block(
            "Figure 14 — RSL size vs safe-region area (fraction of universe)",
            body,
        )
    if experiment == "fig15":
        panels = figures.figure15(
            cardb_sizes=_sizes(args, True)[-1:],
            synthetic_size=_sizes(args, False)[0],
            seed=seed,
            backend=backend,
        )
        body = render_figure(panels)
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + "\n".join(
                ascii_log_chart(series, title=f"{name}: time (s) vs |RSL|")
                for name, series in panels.items()
            )
        return format_block(
            "Figure 15 — execution time (s) of MWP, MQP, SR, MWQ",
            body,
        )
    if experiment == "fig17":
        panels = figures.figure17(
            cardb_sizes=_sizes(args, True)[-1:],
            synthetic_size=_sizes(args, False)[0],
            k=args.k[0],
            seed=seed,
            backend=backend,
        )
        body = render_figure(panels)
        if args.plot:
            from repro.experiments.plotting import ascii_log_chart

            body += "\n" + "\n".join(
                ascii_log_chart(series, title=f"{name}: time (s) vs |RSL|")
                for name, series in panels.items()
            )
        return format_block(
            "Figure 17 — execution time (s) with the approximate safe region",
            body,
        )
    if experiment == "validate":
        return _validate(args)
    if experiment == "updates":
        return _updates(args)
    if experiment == "ablation":
        return _ablation(args)
    if experiment == "run":
        return _run_archive(args)
    if experiment == "trace":
        return _trace(args)
    if experiment == "explain":
        return _explain(args)
    if experiment == "shard":
        return _shard(args)
    if experiment == "prune":
        return _prune(args)
    if experiment == "obs":
        return _obs(args)
    if experiment == "serve":
        return _serve(args)
    if experiment == "weighted":
        return _weighted(args)
    raise ValueError(f"unknown experiment {experiment!r}")


def _write_metrics(args: argparse.Namespace, payload: dict) -> str | None:
    """Write an obs payload to --metrics-out; returns the path written."""
    if not args.metrics_out:
        return None
    import json

    with open(args.metrics_out, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return args.metrics_out


def _trace(args: argparse.Namespace) -> str:
    """Run an instrumented why-not workload and report spans + counters.

    Builds a uniform synthetic dataset (first ``--sizes`` entry, default
    1000 rows), answers a small why-not workload with ``trace=True``,
    validates the exported payload against the ``repro.obs/2`` schema
    (negative durations or unbalanced nesting raise), optionally writes
    it to ``--metrics-out``, and prints the span tree plus the counter
    snapshot.
    """
    from repro.config import WhyNotConfig
    from repro.core.batch import answer_why_not
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.data.workload import build_workload
    from repro.experiments.runner import make_engine
    from repro.obs import render_span_tree, validate_export

    size = args.sizes[0] if args.sizes else 1_000
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    engine = make_engine(
        dataset, backend=args.backend, config=WhyNotConfig(trace=True)
    )
    workload = build_workload(engine, targets=(1, 2, 3), seed=args.seed)
    # Trace the answering phase only, not the workload search above.
    engine.obs.clear()
    for workload_query in workload:
        answer_why_not(
            engine, workload_query.why_not_position, workload_query.query
        )
    payload = engine.obs.export(
        env=True,
        extra={"experiment": "trace", "dataset": dataset.name, "size": size},
    )
    validate_export(payload)
    written = _write_metrics(args, payload)

    lines = [render_span_tree(engine.obs.tracer), "", "counters:"]
    for name, value in sorted(payload["metrics"].items()):
        if isinstance(value, (int, bool)) or (
            isinstance(value, float) and value
        ):
            lines.append(f"  {name} = {value}")
    if written:
        lines.append(f"metrics exported to {written}")
    return format_block(
        f"Traced workload over {dataset.name} "
        f"({len(workload)} why-not questions)",
        "\n".join(lines),
    )


def _explain(args: argparse.Namespace) -> str:
    """EXPLAIN ANALYZE every why-not surface over one sampled question.

    Builds a uniform synthetic dataset (first ``--sizes`` entry, default
    1000 rows) with tracing on, draws one why-not question from the
    standard workload generator, then runs ``engine.explain_plan`` for
    each surface under the configured planner mode and prints the chosen
    plan trees (operator per logical node, estimated vs. measured cost,
    run counts) plus the plan-cache counters.  Every report is validated
    — a node that executed without both costs fails the command.
    """
    from repro.config import WhyNotConfig
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.data.workload import build_workload
    from repro.experiments.runner import make_engine

    size = args.sizes[0] if args.sizes else 1_000
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    engine = make_engine(
        dataset, backend=args.backend, config=WhyNotConfig(trace=True)
    )
    workload = build_workload(engine, targets=(2,), seed=args.seed)
    question = workload[0]
    c_t, q = question.why_not_position, question.query
    k = args.k[0]
    calls = [
        ("reverse_skyline", (q,), {}),
        ("membership", ([c_t], q), {}),
        ("explain", (c_t, q), {}),
        ("mwp", (c_t, q), {}),
        ("mqp", (c_t, q), {}),
        ("safe_region", (q,), {}),
        ("safe_region", (q,), {"approximate": True, "k": k}),
        ("mwq", (c_t, q), {}),
        ("batch", ([c_t], q), {}),
    ]
    sections = []
    for surface, call_args, call_kwargs in calls:
        report = engine.explain_plan(surface, *call_args, **call_kwargs)
        sections.append(report.validate().render())
    cache = engine.plan_cache
    considered = int(cache.considered.value)
    hits = int(cache.hits.value)
    misses = int(cache.misses.value)
    if considered != hits + misses:
        raise ValueError(
            f"plan-cache counter imbalance: {considered} != {hits} + {misses}"
        )
    sections.append(
        "plan cache: "
        f"considered={considered} hits={hits} misses={misses} "
        f"evicted={int(cache.evicted.value)} entries={len(cache)}"
    )
    return format_block(
        f"EXPLAIN over {dataset.name} (planner={engine.config.planner}, "
        f"backend={args.backend}, why-not position {c_t})",
        "\n\n".join(sections),
    )


def _run_archive(args: argparse.Namespace) -> str:
    """Run the full protocol over every default dataset and archive the
    raw records (JSON via --json), plus a one-line summary per dataset."""
    from repro.config import WhyNotConfig
    from repro.data.cardb import generate_cardb
    from repro.data.io import save_results_json
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.experiments.runner import make_engine, run_dataset
    from repro.obs import environment_provenance

    datasets = [generate_cardb(_sizes(args, True)[-1], seed=args.seed)]
    synth_size = _sizes(args, False)[0]
    for j, kind in enumerate(("UN", "CO", "AC")):
        datasets.append(SYNTHETIC_GENERATORS[kind](synth_size, seed=args.seed + j))

    config = WhyNotConfig(trace=True) if args.trace else None
    results = []
    lines = []
    obs_payloads: dict[str, dict] = {}
    for dataset in datasets:
        engine = make_engine(dataset, backend=args.backend, config=config)
        result = run_dataset(
            dataset,
            targets=tuple(range(1, 16)),
            approx_ks=tuple(args.k[:1]),
            seed=args.seed,
            backend=args.backend,
            measure_area=True,
            engine=engine,
        )
        results.append(result)
        if args.trace:
            obs_payloads[dataset.name] = engine.obs.export()
        lines.append(
            f"{dataset.name}: {len(result.records)} queries, "
            f"|RSL| in {[r.rsl_size for r in result.sorted_records()]}"
        )
    if args.json:
        save_results_json(results, args.json)
        lines.append(f"records archived to {args.json}")
    if obs_payloads:
        written = _write_metrics(
            args,
            {
                "schema": "repro.obs/2",
                "env": environment_provenance(),
                "datasets": obs_payloads,
            },
        )
        if written:
            lines.append(f"observability payloads written to {written}")
    return format_block("Experiment run", "\n".join(lines))


def _updates(args: argparse.Namespace) -> str:
    """Update-churn smoke check: incremental maintenance == rebuild.

    Runs a seeded mixed insert/delete/update workload over both dataset
    conventions, re-answering a fixed probe set after every mutation and
    comparing each answer surface (reverse skyline, membership mask, safe
    region, approximate safe region) bit-for-bit against a freshly built
    engine over the final matrices.  Also asserts the scoped-invalidation
    counter balance ``scoped_considered == evicted_scoped +
    retained_scoped`` and that the index matrix tracks the store.  Any
    mismatch prints a FAIL line and the process exits non-zero.
    """
    import numpy as np

    from repro.config import WhyNotConfig
    from repro.core.engine import WhyNotEngine
    from repro.data.synthetic import SYNTHETIC_GENERATORS

    size = args.sizes[0] if args.sizes else 200
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    config = WhyNotConfig(trace=True) if args.trace else WhyNotConfig()
    lines = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    def regions_equal(a, b) -> bool:
        return np.array_equal(a.region.lo, b.region.lo) and np.array_equal(
            a.region.hi, b.region.hi
        )

    for mono in (True, False):
        if mono:
            products, customers = dataset.points, None
        else:
            half = dataset.points.shape[0] // 2
            products = dataset.points[:half]
            customers = dataset.points[half:]
        engine = WhyNotEngine(
            products,
            customers=customers,
            backend=args.backend,
            config=config,
            bounds=dataset.bounds,
        )
        probes = [
            engine.bounds.lo + rng.random(engine.dim) * (
                engine.bounds.hi - engine.bounds.lo
            )
            for _ in range(4)
        ]
        for q in probes:  # warm every cache layer before churning
            engine.reverse_skyline(q)
            engine.safe_region(q)
            engine.safe_region(q, approximate=True, k=5)

        def random_rows(count):
            span = engine.bounds.hi - engine.bounds.lo
            return engine.bounds.lo + rng.random((count, engine.dim)) * span

        def mutate(step):
            kind = ("insert", "delete", "update")[step % 3]
            n = engine.products.shape[0]
            if kind == "insert":
                engine.insert_products(random_rows(2))
            elif kind == "delete":
                engine.delete_products(rng.choice(n, size=2, replace=False))
            else:
                positions = rng.choice(n, size=2, replace=False)
                engine.update_products(positions, random_rows(2))
            if not mono:
                m = engine.customers.shape[0]
                if kind == "insert":
                    engine.insert_customers(random_rows(1))
                elif kind == "delete":
                    engine.delete_customers(rng.choice(m, size=1, replace=False))
                else:
                    engine.update_customers(
                        rng.choice(m, size=1, replace=False), random_rows(1)
                    )

        steps = 6
        for step in range(steps):
            mutate(step)
            for q in probes:  # keep the surviving caches in active use
                engine.reverse_skyline(q)
        fresh = WhyNotEngine(
            engine.products,
            customers=None if mono else engine.customers,
            backend=args.backend,
            config=config,
            bounds=dataset.bounds,
        )
        name = "monochromatic" if mono else "bichromatic"
        lines.append(
            f"{name}: {steps} mixed mutation rounds, "
            f"epoch {engine.dataset_epoch}, "
            f"n={engine.products.shape[0]} m={engine.customers.shape[0]}"
        )
        check(
            "index matrix tracks the store",
            np.array_equal(engine.index.points, engine.products),
        )
        everyone = list(range(engine.customers.shape[0]))
        check(
            "reverse skylines match a rebuilt engine",
            all(
                np.array_equal(engine.reverse_skyline(q), fresh.reverse_skyline(q))
                for q in probes
            ),
        )
        check(
            "membership masks match a rebuilt engine",
            all(
                np.array_equal(
                    engine.membership_mask(everyone, q),
                    fresh.membership_mask(everyone, q),
                )
                for q in probes
            ),
        )
        check(
            "safe regions match a rebuilt engine",
            all(
                regions_equal(engine.safe_region(q), fresh.safe_region(q))
                for q in probes
            ),
        )
        check(
            "approximate safe regions match a rebuilt engine",
            all(
                regions_equal(
                    engine.safe_region(q, approximate=True, k=5),
                    fresh.safe_region(q, approximate=True, k=5),
                )
                for q in probes
            ),
        )
        considered = int(engine._scoped_considered.value)
        evicted = int(engine._scoped_evicted.value)
        retained = int(engine._scoped_retained.value)
        check(
            "scoped_considered == evicted_scoped + retained_scoped "
            f"({considered} == {evicted} + {retained})",
            considered == evicted + retained,
        )
        check(
            "mutations counted",
            int(engine._mutations.value) == (steps if mono else 2 * steps),
        )
    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    lines.append(verdict)
    return format_block(
        f"Update churn over {dataset.name} (seed {args.seed}, "
        f"backend {args.backend})",
        "\n".join(lines),
    )


def _shard(args: argparse.Namespace) -> str:
    """Sharded-execution smoke check: fan-out never changes answers.

    Builds a uniform synthetic dataset (first ``--sizes`` entry, default
    2000 rows) and answers the same probe set through three arms — the
    single-process engine (``shards=1``), the sharded serial backend and
    the sharded process-pool backend (both ``shards=2``, forced via
    ``planner="fixed"``).  Reverse skylines, membership masks and
    safe regions (canonical maximal box set + exact area) are compared
    bit-for-bit across the arms; any divergence prints a FAIL line and
    the process exits non-zero.  Also reports the shard fan-out counters
    and the operators the auto planner picked on this machine.
    """
    import numpy as np

    from repro.config import WhyNotConfig
    from repro.core.engine import WhyNotEngine
    from repro.data.synthetic import SYNTHETIC_GENERATORS

    size = args.sizes[0] if args.sizes else 2_000
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    lines = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    def canonical_boxes(safe_region):
        # simplify keeps zero-volume boxes contained in a later sibling,
        # and which redundant ones survive depends on fold order; the
        # maximal set (drop any box contained in another) is canonical.
        lo = np.asarray(safe_region.region.lo)
        hi = np.asarray(safe_region.region.hi)
        keep = np.ones(lo.shape[0], dtype=bool)
        for i in range(lo.shape[0]):
            if not keep[i]:
                continue
            for j in range(lo.shape[0]):
                if i == j or not keep[j]:
                    continue
                if np.all(lo[j] >= lo[i]) and np.all(hi[j] <= hi[i]):
                    same = np.array_equal(lo[j], lo[i]) and np.array_equal(
                        hi[j], hi[i]
                    )
                    if not same or j > i:
                        keep[j] = False
        lo, hi = lo[keep], hi[keep]
        order = np.lexsort(np.hstack([lo, hi]).T[::-1])
        return lo[order], hi[order]

    arms = {
        "single": WhyNotConfig(planner="fixed"),
        "sharded-serial": WhyNotConfig(
            planner="fixed", shards=2, shard_backend="serial"
        ),
        "sharded-process": WhyNotConfig(
            planner="fixed", shards=2, shard_backend="process"
        ),
    }
    engines = {
        name: WhyNotEngine(
            dataset.points,
            backend=args.backend,
            config=config,
            bounds=dataset.bounds,
        )
        for name, config in arms.items()
    }
    span = dataset.bounds.hi - dataset.bounds.lo
    probes = [
        dataset.bounds.lo + rng.random(dataset.points.shape[1]) * span
        for _ in range(4)
    ]
    everyone = list(range(min(size, 512)))
    answers: dict[str, list] = {}
    timings: dict[str, float] = {}
    for name, engine in engines.items():
        start = time.perf_counter()
        out = []
        for q in probes:
            rsl = engine.reverse_skyline(q)
            mask = engine.membership_mask(everyone, q)
            sr = engine.safe_region(q)
            lo, hi = canonical_boxes(sr)
            out.append(
                (rsl.tolist(), mask.tolist(), lo.tolist(), hi.tolist(),
                 sr.area())
            )
        timings[name] = time.perf_counter() - start
        answers[name] = out
    base = answers["single"]
    for name in ("sharded-serial", "sharded-process"):
        check(
            f"{name} answers bit-identical to single-process "
            "(RSL + masks + canonical SR boxes + exact area)",
            answers[name] == base,
        )
        snap = engines[name].shard_stats.snapshot()
        check(
            f"{name} actually fanned out "
            f"(fanouts={snap['fanouts']}, dispatched={snap['dispatched']}, "
            f"merged={snap['merged']})",
            snap["fanouts"] > 0 and snap["dispatched"] > 0
            and snap["merged"] == snap["fanouts"],
        )
        engines[name].close_shard_executors()
    auto = WhyNotEngine(
        dataset.points,
        backend=args.backend,
        config=WhyNotConfig(planner="auto", shards=2),
        bounds=dataset.bounds,
    )
    auto.reverse_skyline(probes[0])
    picked = auto.last_plan.operator.name
    lines.append(
        f"auto planner on this machine picked {picked!r} for the "
        "reverse skyline (fan-out only when the cost model says it wins)"
    )
    for name, seconds in timings.items():
        lines.append(f"  {name}: {seconds:.3f}s over {len(probes)} probes")
    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    lines.append(verdict)
    return format_block(
        f"Sharded execution over {dataset.name} (n={size}, seed "
        f"{args.seed}, backend {args.backend})",
        "\n".join(lines),
    )


def _prune(args: argparse.Namespace) -> str:
    """Pruned-kernel smoke check: pruning never changes answers.

    Builds a uniform synthetic dataset (first ``--sizes`` entry, default
    2000 rows) and answers the same probe set through three arms — the
    plain kernels (``prune="off"``), the always-pruned kernels
    (``prune="always"``, forced via ``planner="fixed"``) and the
    cost-based ``prune="auto"`` planner.  Reverse skylines, membership
    masks and ``Λ`` culprit sets are compared bit-for-bit against the
    unpruned arm, then a round of inserts/deletes/updates exercises the
    incremental tile-summary maintenance and the comparison is repeated.
    The pruning counter balance invariant (skipped + blocked + refined
    == total pairs) is asserted on the traced arm.  Any divergence
    prints a FAIL line and the process exits non-zero.
    """
    import numpy as np

    from repro.config import WhyNotConfig
    from repro.core.engine import WhyNotEngine
    from repro.data.synthetic import SYNTHETIC_GENERATORS

    size = args.sizes[0] if args.sizes else 2_000
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    lines = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    arms = {
        "off": WhyNotConfig(planner="fixed", prune="off"),
        "always": WhyNotConfig(planner="fixed", prune="always", trace=True),
        "auto": WhyNotConfig(planner="auto", prune="auto"),
    }
    engines = {
        name: WhyNotEngine(
            dataset.points,
            backend=args.backend,
            config=config,
            bounds=dataset.bounds,
        )
        for name, config in arms.items()
    }
    span = dataset.bounds.hi - dataset.bounds.lo
    probes = [
        dataset.bounds.lo + rng.random(dataset.points.shape[1]) * span
        for _ in range(4)
    ]
    everyone = list(range(min(size, 512)))
    why_nots = [int(i) for i in rng.integers(0, size, 3)]

    def answer_all() -> dict[str, list]:
        answers: dict[str, list] = {}
        for name, engine in engines.items():
            out = []
            for q in probes:
                rsl = engine.reverse_skyline(q)
                mask = engine.membership_mask(everyone, q)
                culprits = [
                    sorted(engine.explain(w, q).culprit_positions.tolist())
                    for w in why_nots
                ]
                out.append((rsl.tolist(), mask.tolist(), culprits))
            answers[name] = out
        return answers

    answers = answer_all()
    for name in ("always", "auto"):
        check(
            f"{name} answers bit-identical to unpruned "
            "(RSL + masks + Λ culprit sets)",
            answers[name] == answers["off"],
        )
    counters = engines["always"]._prune_counters
    snap = counters.snapshot() if counters is not None else {}
    check(
        "always arm exercised the pruned kernels "
        f"(pairs_total={snap.get('pairs_total', 0)})",
        snap.get("pairs_total", 0) > 0,
    )
    check(
        "prune counter balance (skipped + blocked + refined == total): "
        f"{snap.get('pairs_skipped', 0)} + {snap.get('pairs_blocked', 0)}"
        f" + {snap.get('pairs_refined', 0)} == {snap.get('pairs_total', 0)}",
        counters is not None and counters.balanced(),
    )
    # Mutate every arm identically, then re-compare: the tile summaries
    # must track insert/delete/update incrementally, not just at build.
    fresh = dataset.bounds.lo + rng.random((8, dataset.points.shape[1])) * span
    doomed = sorted(int(i) for i in rng.choice(size, 4, replace=False))
    moved = sorted(int(i) for i in rng.choice(size - 4, 4, replace=False))
    replacement = (
        dataset.bounds.lo + rng.random((4, dataset.points.shape[1])) * span
    )
    for engine in engines.values():
        engine.insert_products(fresh)
        engine.delete_products(doomed)
        engine.update_products(moved, replacement)
    answers = answer_all()
    for name in ("always", "auto"):
        check(
            f"{name} still bit-identical after insert/delete/update "
            "(incremental tile-summary maintenance)",
            answers[name] == answers["off"],
        )
    check(
        "prune counter balance holds after mutations",
        counters is not None and counters.balanced(),
    )
    engines["auto"].reverse_skyline(probes[0])
    picked = engines["auto"].last_plan.operator.name
    lines.append(
        f"auto planner on this machine picked {picked!r} for the "
        "reverse skyline (prunes only when the tile summary predicts "
        "a win)"
    )
    if snap:
        lines.append(
            "prune.* fingerprint (always arm): "
            + ", ".join(f"{k}={v}" for k, v in sorted(snap.items()))
        )
    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    lines.append(verdict)
    return format_block(
        f"Pruned kernels over {dataset.name} (n={size}, seed "
        f"{args.seed}, backend {args.backend})",
        "\n".join(lines),
    )


def _obs(args: argparse.Namespace) -> str:
    """Journaled observability smoke check: journal, drift, telemetry.

    Builds a uniform synthetic dataset (first ``--sizes`` entry, default
    1000 rows), answers a probe workload twice (the second pass warms
    every cache, so the drift sentinel sees both cold and warm samples)
    on a journaled engine (``trace=True, journal=True``), and asserts:
    the journal captured every plan with balanced ring accounting
    (:func:`repro.obs.validate_journal`); the cost-drift sentinel
    aggregates a non-empty per-operator table; the export validates
    against the ``repro.obs/2`` schema including the journal section;
    and the sharded worker-telemetry counters balance — the same probe
    set answered through the serial and process shard backends merges
    identical ``kernels.*`` / ``prune.*`` worker totals, and the merged
    prune counters keep the pair-balance invariant.  Any violation
    prints a FAIL line and the process exits non-zero.
    """
    import numpy as np

    from repro.config import WhyNotConfig
    from repro.core.engine import WhyNotEngine
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.obs import validate_export, validate_journal

    size = args.sizes[0] if args.sizes else 1_000
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    lines = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    span = dataset.bounds.hi - dataset.bounds.lo
    probes = [
        dataset.bounds.lo + rng.random(dataset.points.shape[1]) * span
        for _ in range(3)
    ]
    everyone = list(range(min(size, 256)))

    def workload(engine) -> None:
        for _ in range(2):  # second pass hits the caches (warm drift rows)
            for q in probes:
                engine.reverse_skyline(q)
                engine.membership_mask(everyone, q)
                engine.safe_region(q)

    engine = WhyNotEngine(
        dataset.points,
        backend=args.backend,
        config=WhyNotConfig(trace=True, journal=True, prune="always"),
        bounds=dataset.bounds,
    )
    workload(engine)
    journal = engine.journal
    check(
        f"journal populated ({len(journal)} records, "
        f"appended={journal.appended})",
        len(journal) > 0,
    )
    try:
        validate_journal(journal)
        check("journal validates (seq order, accounting, field shapes)", True)
    except ValueError as exc:
        check(f"journal validates: {exc}", False)
    check(
        "journal records carry kernel counter deltas",
        any(
            name.startswith("kernels.")
            for entry in journal
            for name in entry.counters
        ),
    )
    report = engine.drift_report()
    check(
        f"drift sentinel aggregated {len(report.operators)} operators",
        len(report.operators) > 0,
    )
    payload = engine.obs.export(
        env=True,
        extra={"experiment": "obs", "dataset": dataset.name, "size": size},
    )
    try:
        validate_export(payload)
        check(f"export validates ({payload['schema']})", True)
    except ValueError as exc:
        check(f"export validates: {exc}", False)
    check(
        "export carries the journal section",
        bool(payload.get("journal", {}).get("records")),
    )
    written = _write_metrics(args, payload)

    # Worker-telemetry balance: the serial and process shard backends
    # run the identical task code, so the worker counter totals they
    # merge back must be exactly equal for the same probe set.
    shard_totals: dict[str, dict] = {}
    prune_balanced: dict[str, bool] = {}
    for backend_name in ("serial", "process"):
        sharded = WhyNotEngine(
            dataset.points,
            backend=args.backend,
            config=WhyNotConfig(
                trace=True,
                journal=True,
                prune="always",
                planner="fixed",
                shards=2,
                shard_backend=backend_name,
            ),
            bounds=dataset.bounds,
        )
        workload(sharded)
        executor = next(iter(sharded._shard_executors.values()), None)
        shard_totals[backend_name] = (
            {k: dict(v) for k, v in executor.worker_totals.items()}
            if executor is not None
            else {}
        )
        prune_balanced[backend_name] = (
            sharded._prune_counters is not None
            and sharded._prune_counters.balanced()
        )
        check(
            f"{backend_name} backend merged worker telemetry "
            f"(worker_merges={sharded.shard_stats.worker_merges})",
            sharded.shard_stats.worker_merges > 0,
        )
        sharded.close_shard_executors()
    check(
        "worker counter totals balance across backends "
        "(serial == process, kernels.* and prune.*)",
        shard_totals["serial"] == shard_totals["process"]
        and bool(shard_totals["serial"].get("kernels")),
    )
    check(
        "merged prune counters keep the pair-balance invariant",
        prune_balanced["serial"] and prune_balanced["process"],
    )

    summary = journal.summary()
    lines.append("")
    lines.append(
        f"journal: retained={summary['retained']}/{summary['capacity']}, "
        f"appended={summary['appended']}, dropped={summary['dropped']}"
    )
    for surface, agg in sorted(summary["surfaces"].items()):
        lines.append(
            f"  {surface}: {agg['count']} plans, "
            f"mean {agg['mean_s'] * 1e3:.3f} ms"
        )
    lines.append("")
    lines.append(report.render())
    if written:
        lines.append(f"\nmetrics exported to {written}")
    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    lines.append(verdict)
    return format_block(
        f"Journaled observability over {dataset.name} (n={size}, seed "
        f"{args.seed}, backend {args.backend})",
        "\n".join(lines),
    )


def _ablation(args: argparse.Namespace) -> str:
    """Run the backend / pruning / k-sweep ablation studies."""
    from repro.data.cardb import generate_cardb
    from repro.experiments.ablation import (
        ablation_backends,
        ablation_k_sweep,
        ablation_pruning,
    )

    size = _sizes(args, True)[-1]
    dataset = generate_cardb(size, seed=args.seed)
    sections = []

    rows = ablation_backends(dataset, seed=args.seed)
    lines = [f"{'backend':>8} {'seconds':>10} {'node acc.':>10} {'pt cmp.':>12}"]
    lines += [
        f"{r['backend']:>8} {r['seconds']:>10.4f} {r['node_accesses']:>10} "
        f"{r['point_comparisons']:>12}"
        for r in rows
    ]
    sections.append("Window-query backends\n" + "\n".join(lines))

    rows = ablation_pruning(dataset, seed=args.seed)
    lines = [f"{'method':>8} {'seconds':>10} {'window queries':>15}"]
    lines += [
        f"{r['method']:>8} {r['seconds']:>10.4f} {r['window_queries']:>15}"
        for r in rows
    ]
    sections.append("Reverse-skyline pruning (BBRS)\n" + "\n".join(lines))

    rows = ablation_k_sweep(dataset, ks=tuple(args.k), seed=args.seed)
    lines = [f"{'k':>6} {'mean cost':>12} {'area kept':>10} {'seconds':>9}"]
    lines += [
        f"{str(r['k']):>6} {r['mean_cost']:>12.6f} {r['mean_area_kept']:>9.1%} "
        f"{r['seconds']:>9.3f}"
        for r in rows
    ]
    sections.append("Approximation parameter sweep\n" + "\n".join(lines))

    return format_block(
        f"Ablation studies over {dataset.name}", "\n\n".join(sections)
    )


def _validate(args: argparse.Namespace) -> str:
    """Run one seeded experiment and check every Section-VI claim."""
    from repro.config import WhyNotConfig
    from repro.data.cardb import generate_cardb
    from repro.experiments.runner import make_engine, run_dataset
    from repro.experiments.validation import run_all_checks

    size = _sizes(args, True)[-1]
    dataset = generate_cardb(size, seed=args.seed)
    engine = make_engine(
        dataset,
        backend=args.backend,
        config=WhyNotConfig(trace=True) if args.trace else None,
    )
    result = run_dataset(
        dataset,
        targets=tuple(range(1, 16)),
        approx_ks=tuple(args.k[:1]),
        seed=args.seed,
        backend=args.backend,
        measure_area=True,
        engine=engine,
    )
    report = run_all_checks(result.records)
    header = (
        f"Validation over {dataset.name} "
        f"({len(result.records)} why-not queries, seed {args.seed})"
    )
    body = report.render()
    if args.trace:
        from repro.obs import validate_export

        payload = engine.obs.export(
            env=True,
            extra={"experiment": "validate", "dataset": dataset.name},
        )
        validate_export(payload)
        written = _write_metrics(args, payload)
        body += f"\nobservability export validated ({payload['schema']})"
        if written:
            body += f"; written to {written}"
    return format_block(header, body)


def _serve(args: argparse.Namespace) -> str:
    """The serving-layer smoke: an in-process asyncio service under
    concurrent HTTP clients, verified answer-by-answer against direct
    engine calls replayed at each served epoch."""
    import asyncio

    import numpy as np

    from repro.core.batch import answer_why_not
    from repro.core.engine import WhyNotEngine
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.serve import (
        ServeConfig,
        WhyNotHTTPServer,
        WhyNotService,
        canonical_json,
        http_json,
        serialize_answer,
    )

    size = args.sizes[0] if args.sizes else 300
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    half = dataset.points.shape[0] // 2
    products = dataset.points[:half]
    customers = dataset.points[half:]
    query = np.quantile(products, 0.5, axis=0)
    questions = list(range(min(6, customers.shape[0])))
    n_readers = 16
    mutation_log = [
        ("insert_products", {"points": [[0.81, 0.13]]}),
        ("insert_products", {"points": [[0.17, 0.88]]}),
    ]

    lines: list[str] = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    async def scenario() -> dict:
        engine = WhyNotEngine(
            products, customers=customers, backend=args.backend
        )
        service = WhyNotService(
            engine,
            ServeConfig(max_inflight=8, coalesce_window_s=0.002),
        )
        out: dict = {}
        async with service:
            async with WhyNotHTTPServer(service) as server:
                host, port = server.host, server.port

                async def read(i: int):
                    return await http_json(
                        host, port, "POST", "/why-not",
                        {
                            "why_not": questions[i % len(questions)],
                            "query": list(query),
                            "deadline_s": 30,
                        },
                    )

                async def write_all():
                    results = []
                    for op, payload in mutation_log:
                        await asyncio.sleep(0.003)
                        results.append(
                            await http_json(
                                host, port, "POST", "/mutate",
                                dict(payload, op=op),
                            )
                        )
                    return results

                gathered = await asyncio.gather(
                    *[read(i) for i in range(n_readers)], write_all()
                )
                out["reads"] = gathered[:n_readers]
                out["writes"] = gathered[n_readers]
                out["health"] = await http_json(host, port, "GET", "/healthz")
                out["metrics"] = await http_json(host, port, "GET", "/metrics")
            out["counters"] = {
                "requests": int(service.m_requests.value),
                "completed": int(service.m_completed.value),
                "coalesced": int(service.m_coalesced.value),
                "batches": int(service.m_batches.value),
                "shed": int(service.m_shed_queue.value)
                + int(service.m_shed_deadline.value),
                "drains": int(service.m_drains.value),
            }
            out["leases_active"] = engine.leases.active
            out["final_epoch"] = engine.dataset_epoch
        out["engine_closed"] = engine.closed
        return out

    out = asyncio.run(scenario())

    check(
        "every read answered 200",
        all(status == 200 for status, _ in out["reads"]),
    )
    check(
        "every mutation answered 200 with advancing epochs",
        [status for status, _ in out["writes"]] == [200, 200]
        and [body["epoch"] for _, body in out["writes"]] == [1, 2],
    )

    # Replay verification: a twin engine is rebuilt at each served epoch
    # by replaying the mutation-log prefix, and every served response
    # must be bit-identical to the twin's direct answer.
    twins: dict[int, WhyNotEngine] = {}

    def direct(epoch: int, why_not: int) -> str:
        if epoch not in twins:
            twin = WhyNotEngine(
                products.copy(), customers=customers.copy(),
                backend=args.backend,
            )
            for op, payload in mutation_log[:epoch]:
                getattr(twin, op)(**payload)
            twins[epoch] = twin
        return canonical_json(
            serialize_answer(answer_why_not(twins[epoch], why_not, query))
        )

    divergent = 0
    epochs_served = set()
    for status, body in out["reads"]:
        if status != 200:
            divergent += 1
            continue
        epochs_served.add(body["epoch"])
        expected = direct(body["epoch"], body["result"]["why_not"]["position"])
        if canonical_json(body["result"]) != expected:
            divergent += 1
    for twin in twins.values():
        twin.close()
    check(
        f"all {n_readers} served responses bit-identical to direct "
        f"engine calls (epochs {sorted(epochs_served)})",
        divergent == 0,
    )
    counters = out["counters"]
    check(
        "serve counters balance (requests == completed + shed)",
        counters["requests"] == counters["completed"] + counters["shed"],
    )
    check("coalescer folded concurrent requests", counters["coalesced"] >= 1)
    check(
        "writer drained once per mutation batch",
        1 <= counters["drains"] <= len(mutation_log),
    )
    check(
        "final epoch equals applied mutations",
        out["final_epoch"] == len(mutation_log),
    )
    check("no lease leaked", out["leases_active"] == 0)
    check("stop() closed the engine", out["engine_closed"])
    health_status, health = out["health"]
    check("healthz reported ok", health_status == 200 and health["status"] == "ok")
    metrics_status, metrics_text = out["metrics"]
    check(
        "metrics endpoint exports serve.* and engine counters",
        metrics_status == 200
        and "serve_requests_total" in metrics_text
        and "engine_dataset_epoch" in metrics_text,
    )

    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    body = "\n".join(
        [
            f"dataset UN n={size} ({half} products / "
            f"{customers.shape[0]} customers), backend={args.backend}",
            f"workload: {n_readers} concurrent why-not clients + "
            f"{len(mutation_log)} interleaved mutations over HTTP",
            f"counters: {counters}",
            "",
            *lines,
            "",
            f"verdict: {verdict}",
        ]
    )
    return format_block(
        "SERVE — concurrent serving layer vs direct engine calls", body
    )


def _weighted(args: argparse.Namespace) -> str:
    """Weighted-dominance divergence check: engine vs brute-force oracle.

    Builds a bichromatic uniform dataset (first ``--sizes`` entry,
    default 300 rows split products/customers), then sweeps preference
    weight shapes (unit spelled two ways, magnitude skew, both partial
    supports) x shard counts over every read surface — reverse skyline,
    membership mask, culprit explanation and the exact safe region —
    asserting each answer equals the nested-loop weighted oracle from
    ``repro.prefs.oracle`` exactly, and that unit weights stay
    bit-identical to the unweighted engine.  Any divergence prints a
    FAIL line and the process exits non-zero.
    """
    import numpy as np

    from repro.config import WhyNotConfig
    from repro.core.engine import WhyNotEngine
    from repro.core.safe_region import compute_safe_region_oracle
    from repro.data.synthetic import SYNTHETIC_GENERATORS
    from repro.index.scan import ScanIndex
    from repro.prefs.oracle import (
        oracle_lambda_positions,
        oracle_membership,
        oracle_reverse_skyline,
    )

    size = args.sizes[0] if args.sizes else 300
    dataset = SYNTHETIC_GENERATORS["UN"](size, seed=args.seed)
    half = dataset.points.shape[0] // 2
    products = dataset.points[:half]
    customers = dataset.points[half:]
    rng = np.random.default_rng(args.seed + 1)
    span = dataset.bounds.hi - dataset.bounds.lo
    probes = dataset.bounds.lo + rng.random((3, products.shape[1])) * span

    shapes = [
        ("unit", None),
        ("ones", [1.0, 1.0]),
        ("skew", [4.0, 0.25]),
        ("drop-hi", [1.0, 0.0]),
        ("drop-lo", [0.0, 2.0]),
    ]
    lines = []
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    plain = WhyNotEngine(
        products, customers, backend=args.backend, bounds=dataset.bounds
    )
    for shards in (1, 2):
        config = WhyNotConfig(shards=shards, shard_backend="serial")
        engine = WhyNotEngine(
            products,
            customers,
            backend=args.backend,
            config=config,
            bounds=dataset.bounds,
        )
        for name, weights in shapes:
            w = None if weights is None else np.asarray(weights)
            for j, q in enumerate(probes):
                rsl = np.sort(engine.reverse_skyline(q, weights=weights))
                oracle_rsl = np.sort(
                    oracle_reverse_skyline(
                        products, customers, q,
                        weights=w, policy=config.policy,
                    )
                )
                check(
                    f"shards={shards} {name} probe{j}: RSL == oracle",
                    np.array_equal(rsl, oracle_rsl),
                )
                mask = engine.membership_mask(
                    list(range(customers.shape[0])), q, weights=weights
                )
                oracle_mask = [
                    oracle_membership(
                        products, customers[i], q,
                        weights=w, policy=config.policy,
                    )
                    for i in range(customers.shape[0])
                ]
                check(
                    f"shards={shards} {name} probe{j}: membership == oracle",
                    list(mask) == oracle_mask,
                )
                exp = engine.explain(0, q, weights=weights)
                lam = oracle_lambda_positions(
                    products, customers[0], q,
                    weights=w, policy=config.policy,
                )
                check(
                    f"shards={shards} {name} probe{j}: lambda == oracle",
                    np.array_equal(
                        np.sort(exp.culprit_positions), np.sort(lam)
                    ),
                )
                sr = engine.safe_region(q, weights=weights)
                oracle_sr = compute_safe_region_oracle(
                    ScanIndex(products),
                    customers,
                    q,
                    oracle_rsl,
                    engine._geometry_bounds(q),
                    config=config,
                    weights=w,
                )
                check(
                    f"shards={shards} {name} probe{j}: safe region == oracle",
                    np.isclose(sr.area(), oracle_sr.area()),
                )
                if name in ("unit", "ones"):
                    check(
                        f"shards={shards} {name} probe{j}: "
                        "bit-identical to unweighted engine",
                        np.array_equal(
                            rsl, np.sort(plain.reverse_skyline(q))
                        ),
                    )
        counters = {
            key: engine.obs.counter(key).value
            for key in (
                "prefs.default_requests",
                "prefs.weighted_requests",
                "prefs.cache_bypass",
            )
        }
        check(
            f"shards={shards}: weighted requests counted",
            counters["prefs.weighted_requests"] > 0,
        )
        lines.append(f"  shards={shards} counters: {counters}")
        engine.close()
    plain.close()

    verdict = "all checks passed" if not failures else f"{failures} FAILURES"
    body = "\n".join(
        [
            f"dataset UN n={size} ({half} products / "
            f"{customers.shape[0]} customers), backend={args.backend}",
            f"weight shapes: {[n for n, _ in shapes]}, "
            f"probes={probes.shape[0]}, shard counts: 1, 2",
            "",
            *lines,
            "",
            f"verdict: {verdict}",
        ]
    )
    return format_block(
        "WEIGHTED — preference-model surfaces vs brute-force oracle", body
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    experiments = (
        ["table3", "table4", "table5", "table6", "fig14", "fig15", "fig17"]
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks: list[str] = []
    failed = False
    for experiment in experiments:
        start = time.perf_counter()
        output = _run(args, experiment)
        elapsed = time.perf_counter() - start
        output += f"[{experiment} regenerated in {elapsed:.1f}s]\n\n"
        sys.stdout.write(output)
        chunks.append(output)
        if (
            experiment
            in (
                "validate", "updates", "shard", "prune", "obs", "serve",
                "weighted",
            )
            and "FAIL" in output
        ):
            failed = True
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("".join(chunks))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
