"""Dependency-free ASCII plots for the figure series.

The CLI renders Figures 14/15/17 as text tables by default; with
``--plot`` it adds these ASCII charts, which make the paper's shapes
(safe-region collapse, SR dominating MWQ, the approximation speedup)
visible at a glance in a terminal.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart", "ascii_log_chart"]

_MARKS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, height: int) -> int:
    if hi <= lo:
        return 0
    return int(round((value - lo) / (hi - lo) * (height - 1)))


def ascii_chart(
    series: Mapping[str, Sequence[tuple[int, float]]],
    width: int = 60,
    height: int = 14,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a fixed-size ASCII scatter.

    Multiple series share the canvas with one mark character each; a
    legend and min/max annotations are appended.  ``log_y`` plots
    ``log10(y)`` (zeros are clamped to the smallest positive value),
    which is the right scale for Figure 14's area collapse.
    """
    points: list[tuple[str, int, float]] = []
    for name, values in series.items():
        for x, y in values:
            points.append((name, int(x), float(y)))
    if not points:
        return f"{title}\n(no data)"

    ys = [y for _n, _x, y in points]
    if log_y:
        positive = [y for y in ys if y > 0]
        floor = min(positive) if positive else 1e-12
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731
    t_ys = [transform(y) for y in ys]
    xs = [x for _n, x, _y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(t_ys), max(t_ys)

    canvas = [[" "] * width for _ in range(height)]
    marks = {name: _MARKS[i % len(_MARKS)] for i, name in enumerate(series)}
    for name, x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(transform(y), y_lo, y_hi, height)
        canvas[row][col] = marks[name]

    lines = []
    if title:
        lines.append(title)
    top = f"{y_hi:.3g}" if not log_y else f"1e{y_hi:.1f}"
    bottom = f"{y_lo:.3g}" if not log_y else f"1e{y_lo:.1f}"
    lines.append(f"  y: {bottom} .. {top}" + ("  (log scale)" if log_y else ""))
    lines.extend("  |" + "".join(row) for row in canvas)
    lines.append("  +" + "-" * width)
    lines.append(f"   x: |RSL| {x_lo} .. {x_hi}")
    legend = "   ".join(f"{mark}={name}" for name, mark in marks.items())
    lines.append(f"  {legend}")
    return "\n".join(lines)


def ascii_log_chart(
    series: Mapping[str, Sequence[tuple[int, float]]],
    width: int = 60,
    height: int = 14,
    title: str = "",
) -> str:
    """Shorthand for :func:`ascii_chart` with a log y-axis."""
    return ascii_chart(series, width=width, height=height, title=title, log_y=True)
