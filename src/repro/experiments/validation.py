"""Programmatic validation of the paper's experimental claims.

``repro-whynot validate`` runs a seeded experiment and checks every
qualitative claim of Section VI against the measured records, printing a
PASS / FAIL line per claim.  This is the executable summary of
EXPERIMENTS.md: if it passes, the reproduction reproduces.

Each check is a pure function over :class:`QueryRecord` lists so the test
suite exercises them on synthetic inputs too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.experiments.records import QueryRecord

__all__ = [
    "CheckResult",
    "ValidationReport",
    "run_all_checks",
    "check_mwq_never_worse_than_mwp",
    "check_overlap_cases_zero_cost",
    "check_mqp_usually_most_expensive",
    "check_safe_region_shrinks",
    "check_sr_dominates_mwq_time",
    "check_approx_not_worse_than_mwp",
    "check_approx_area_subset",
]

_EPS = 1e-9


@dataclass
class CheckResult:
    """Outcome of one claim check."""

    name: str
    claim: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f"  ({self.detail})" if self.detail else ""
        return f"[{status}] {self.name}: {self.claim}{suffix}"


@dataclass
class ValidationReport:
    """All claim checks for one record set."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def render(self) -> str:
        lines = [result.line() for result in self.results]
        verdict = "ALL CLAIMS REPRODUCED" if self.passed else "SOME CLAIMS FAILED"
        lines.append(f"=> {verdict} ({sum(r.passed for r in self.results)}"
                     f"/{len(self.results)})")
        return "\n".join(lines)


def _usable(records: Sequence[QueryRecord]) -> list[QueryRecord]:
    return [r for r in records if np.isfinite(r.mwp_cost)]


def check_mwq_never_worse_than_mwp(records: Sequence[QueryRecord]) -> CheckResult:
    """Tables III-IV: 'the outputs returned by MWQ are less costly (at
    least equal) than MWP'."""
    rows = _usable(records)
    violations = [
        r for r in rows if r.mwq_cost > r.mwp_cost + _EPS
    ]
    return CheckResult(
        name="mwq<=mwp",
        claim="MWQ cost never exceeds MWP cost",
        passed=not violations and bool(rows),
        detail=f"{len(rows) - len(violations)}/{len(rows)} queries",
    )


def check_overlap_cases_zero_cost(records: Sequence[QueryRecord]) -> CheckResult:
    """Table I / Table III: case C1 answers are free."""
    overlap = [r for r in records if r.mwq_case == "C1"]
    violations = [r for r in overlap if r.mwq_cost != 0.0]
    return CheckResult(
        name="c1-zero-cost",
        claim="every overlap (C1) query has MWQ cost 0",
        passed=not violations,
        detail=f"{len(overlap)} C1 queries",
    )


def check_mqp_usually_most_expensive(
    records: Sequence[QueryRecord], threshold: float = 0.5
) -> CheckResult:
    """Section VI.A.2: MQP (with the lost-customer penalty) loses to MWQ
    'in most cases'."""
    rows = [r for r in _usable(records) if np.isfinite(r.mqp_cost)]
    worst = [r for r in rows if r.mqp_cost >= max(r.mwp_cost, r.mwq_cost) - _EPS]
    fraction = len(worst) / len(rows) if rows else 0.0
    return CheckResult(
        name="mqp-worst",
        claim=f"MQP is the most expensive method on >{threshold:.0%} of queries",
        passed=fraction > threshold,
        detail=f"{fraction:.0%}",
    )


def check_safe_region_shrinks(records: Sequence[QueryRecord]) -> CheckResult:
    """Figure 14: the safe region shrinks as |RSL| grows (trend, plus the
    largest-|RSL| region smaller than the smallest-|RSL| one)."""
    rows = sorted(
        (r for r in records if np.isfinite(r.sr_area)),
        key=lambda r: r.rsl_size,
    )
    if len(rows) < 4:
        return CheckResult(
            name="sr-shrinks",
            claim="safe-region area decreases with |RSL|",
            passed=False,
            detail="too few area measurements",
        )
    sizes = np.array([r.rsl_size for r in rows], dtype=float)
    areas = np.array([r.sr_area for r in rows])
    correlation = float(np.corrcoef(sizes, areas)[0, 1]) if areas.std() else 0.0
    endpoint_ok = areas[-1] <= areas[0] + _EPS
    return CheckResult(
        name="sr-shrinks",
        claim="safe-region area decreases with |RSL|",
        passed=correlation < 0.3 and endpoint_ok,
        detail=f"corr={correlation:.2f}",
    )


def check_sr_dominates_mwq_time(
    records: Sequence[QueryRecord], threshold: float = 0.5
) -> CheckResult:
    """Figure 15: 'most of the execution time of MWQ is spent computing
    the safe region' — in aggregate over the workload."""
    total_sr = sum(r.sr_time for r in records)
    total_mwq = sum(r.mwq_total_time for r in records)
    fraction = total_sr / total_mwq if total_mwq else 0.0
    return CheckResult(
        name="sr-dominates",
        claim="safe-region construction dominates MWQ wall time",
        passed=fraction >= threshold and total_mwq > 0,
        detail=f"{fraction:.0%} of MWQ time",
    )


def check_approx_not_worse_than_mwp(records: Sequence[QueryRecord]) -> CheckResult:
    """Section VI.B.2: the Approx-MWQ result 'is no worse than the one
    received from MWP'."""
    pairs = [
        (outcome.cost, r.mwp_cost)
        for r in _usable(records)
        for outcome in r.approx.values()
    ]
    violations = [p for p in pairs if p[0] > p[1] + _EPS]
    return CheckResult(
        name="approx<=mwp",
        claim="Approx-MWQ never answers worse than MWP",
        passed=not violations and bool(pairs),
        detail=f"{len(pairs) - len(violations)}/{len(pairs)} answers",
    )


def check_approx_area_subset(records: Sequence[QueryRecord]) -> CheckResult:
    """Figure 16: the approximate safe region under-approximates."""
    pairs = [
        (outcome.sr_area, r.sr_area)
        for r in records
        for outcome in r.approx.values()
        if np.isfinite(outcome.sr_area) and np.isfinite(r.sr_area)
    ]
    violations = [p for p in pairs if p[0] > p[1] + _EPS]
    return CheckResult(
        name="approx-subset",
        claim="approximate safe region never exceeds the exact one",
        passed=not violations and bool(pairs),
        detail=f"{len(pairs)} regions compared",
    )


ALL_CHECKS: tuple[Callable[[Sequence[QueryRecord]], CheckResult], ...] = (
    check_mwq_never_worse_than_mwp,
    check_overlap_cases_zero_cost,
    check_mqp_usually_most_expensive,
    check_safe_region_shrinks,
    check_sr_dominates_mwq_time,
    check_approx_not_worse_than_mwp,
    check_approx_area_subset,
)


def run_all_checks(records: Sequence[QueryRecord]) -> ValidationReport:
    """Run every claim check over the records."""
    report = ValidationReport()
    for check in ALL_CHECKS:
        report.results.append(check(records))
    return report
