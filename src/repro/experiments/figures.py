"""Figures 14, 15 and 17 of the paper, as data series.

Each function returns plain ``{series_name: [(x, y), ...]}`` mappings —
the exact numbers behind the paper's plots — which the reporting module
renders as text and the benchmarks regenerate.

* Figure 14 — safe-region area versus ``|RSL(q)|`` on CarDB;
* Figure 15 — execution time of MWP, MQP, SR and MWQ versus ``|RSL(q)|``;
* Figure 17 — execution time of MWP, MQP and Approx-MWQ.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.dataset import Dataset
from repro.data.synthetic import SYNTHETIC_GENERATORS
from repro.experiments.records import DatasetResult
from repro.experiments.runner import run_dataset
from repro.experiments.tables import cardb_datasets

__all__ = ["figure14", "figure15", "figure17"]

Series = dict[str, list[tuple[int, float]]]


def figure14(
    sizes: Sequence[int] = (50_000, 100_000, 200_000),
    seed: int = 7,
    backend: str = "scan",
    targets: Sequence[int] = tuple(range(1, 16)),
) -> Series:
    """RSL size vs safe-region area on CarDB (one series per size).

    Areas are normalised by the universe volume so different sizes share a
    scale; the paper's headline shape — the safe region shrinks as the
    reverse skyline grows — must hold per series.
    """
    series: Series = {}
    for dataset in cardb_datasets(sizes, seed=seed):
        result = run_dataset(
            dataset, targets=targets, seed=seed, backend=backend, measure_area=True
        )
        universe = dataset.bounds.volume()
        series[dataset.name] = [
            (record.rsl_size, record.sr_area / universe)
            for record in result.sorted_records()
        ]
    return series


def _time_series(result: DatasetResult, approx_k: int | None = None) -> Series:
    records = result.sorted_records()
    series: Series = {
        "MWP": [(r.rsl_size, r.mwp_time) for r in records],
        "MQP": [(r.rsl_size, r.mqp_time) for r in records],
    }
    if approx_k is None:
        series["SR"] = [(r.rsl_size, r.sr_time) for r in records]
        series["MWQ"] = [(r.rsl_size, r.mwq_total_time) for r in records]
    else:
        series[f"Approx-MWQ(k={approx_k})"] = [
            (r.rsl_size, r.approx[approx_k].total_time)
            for r in records
            if approx_k in r.approx
        ]
    return series


def figure15(
    datasets: Sequence[Dataset] | None = None,
    cardb_sizes: Sequence[int] = (100_000,),
    synthetic_size: int = 100_000,
    seed: int = 7,
    backend: str = "scan",
    targets: Sequence[int] = tuple(range(1, 16)),
) -> dict[str, Series]:
    """Execution time of MWP, MQP, SR and MWQ per dataset.

    The expected shape: MWP/MQP are flat and cheap; SR grows with
    ``|RSL|`` and dominates MWQ, which tracks SR closely.
    """
    datasets = list(datasets) if datasets is not None else _default_datasets(
        cardb_sizes, synthetic_size, seed
    )
    out: dict[str, Series] = {}
    for dataset in datasets:
        result = run_dataset(
            dataset, targets=targets, seed=seed, backend=backend, measure_area=False
        )
        out[dataset.name] = _time_series(result)
    return out


def figure17(
    datasets: Sequence[Dataset] | None = None,
    cardb_sizes: Sequence[int] = (100_000,),
    synthetic_size: int = 100_000,
    k: int = 10,
    seed: int = 7,
    backend: str = "scan",
    targets: Sequence[int] = tuple(range(1, 16)),
) -> dict[str, Series]:
    """Execution time of MWP, MQP and Approx-MWQ (pre-computed DSLs).

    The expected shape: Approx-MWQ collapses the safe-region cost by
    orders of magnitude relative to Figure 15's exact MWQ.
    """
    datasets = list(datasets) if datasets is not None else _default_datasets(
        cardb_sizes, synthetic_size, seed
    )
    out: dict[str, Series] = {}
    for dataset in datasets:
        result = run_dataset(
            dataset,
            targets=targets,
            approx_ks=(k,),
            seed=seed,
            backend=backend,
            measure_area=False,
        )
        out[dataset.name] = _time_series(result, approx_k=k)
    return out


def _default_datasets(
    cardb_sizes: Sequence[int], synthetic_size: int, seed: int
) -> list[Dataset]:
    """The paper's Figure-15/17 panels: CarDB plus the three synthetics."""
    datasets = cardb_datasets(cardb_sizes, seed=seed)
    for j, kind in enumerate(("UN", "CO", "AC")):
        generator = SYNTHETIC_GENERATORS[kind]
        datasets.append(generator(synthetic_size, seed=seed + j))
    return datasets
