"""Experiment record types.

One :class:`QueryRecord` per (query, why-not point) pair captures every
number the paper's tables and figures report, so each table/figure
function is a pure projection over a list of records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryRecord", "DatasetResult"]


@dataclass
class QueryRecord:
    """All measurements for one why-not experiment.

    Costs are the Section-VI normalised scores (lower is better); times
    are wall-clock seconds.  ``approx`` maps each tested ``k`` to a
    ``(cost, sr_time, mwq_time, sr_area)`` tuple for the Approx-MWQ runs.

    Not to be confused with :class:`repro.obs.journal.JournalRecord` —
    that class is the serving layer's per-executed-plan provenance row;
    this one is an offline experiment measurement.  The two never share
    a module or a name.
    """

    dataset: str
    rsl_size: int
    query: np.ndarray
    why_not_position: int

    mwp_cost: float = float("nan")
    mqp_cost: float = float("nan")
    mwq_cost: float = float("nan")
    mwq_case: str = ""

    mwp_time: float = 0.0
    mqp_time: float = 0.0
    sr_time: float = 0.0
    mwq_time: float = 0.0  # Algorithm-4 time on top of the safe region.

    sr_area: float = float("nan")
    sr_boxes: int = 0

    approx: dict[int, "ApproxOutcome"] = field(default_factory=dict)

    @property
    def mwq_total_time(self) -> float:
        """MWQ wall clock including safe-region construction (Fig. 15)."""
        return self.sr_time + self.mwq_time


@dataclass
class ApproxOutcome:
    """One Approx-MWQ measurement for a specific sampling parameter k."""

    k: int
    cost: float
    sr_time: float
    mwq_time: float
    sr_area: float

    @property
    def total_time(self) -> float:
        return self.sr_time + self.mwq_time


@dataclass
class DatasetResult:
    """All query records of one dataset run, with provenance."""

    dataset: str
    size: int
    records: list[QueryRecord] = field(default_factory=list)

    def sorted_records(self) -> list[QueryRecord]:
        return sorted(self.records, key=lambda r: r.rsl_size)
