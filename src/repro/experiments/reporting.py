"""Plain-text rendering of tables and figure series.

Formats match the paper's presentation: one block per dataset with a row
per query (``q_i, |RSL(q_i)| = n``) and one column per method.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.tables import QualityRow

__all__ = ["format_quality_table", "format_series", "format_block"]


def _fmt(value: float) -> str:
    import math

    if value != value:  # NaN
        return "      n/a"
    if math.isinf(value):
        return "      inf"
    return f"{value:.9f}"


def format_quality_table(
    rows: Sequence[QualityRow], approx_ks: Sequence[int] = ()
) -> str:
    """Render one dataset's quality rows in the paper's table layout."""
    headers = ["Queries", "MWP", "MQP", "MWQ"]
    headers += [f"Approx-MWQ(k={k})" for k in approx_ks]
    lines = ["  ".join(f"{h:>22}" for h in headers)]
    for i, row in enumerate(rows, start=1):
        cells = [f"q{i}, |RSL|={row.rsl_size}"]
        cells += [_fmt(row.mwp), _fmt(row.mqp), _fmt(row.mwq)]
        for k in approx_ks:
            value = (row.approx or {}).get(k, float("nan"))
            cells.append(_fmt(value))
        lines.append("  ".join(f"{c:>22}" for c in cells))
    return "\n".join(lines)


def format_series(series: dict[str, list[tuple[int, float]]]) -> str:
    """Render figure series as aligned (x, y) columns per series."""
    lines = []
    for name, points in series.items():
        lines.append(f"[{name}]")
        for x, y in points:
            lines.append(f"  |RSL|={x:>3}  {y:.6g}")
    return "\n".join(lines)


def format_block(title: str, body: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}\n{body}\n"


def render_tables(
    tables: dict[str, list[QualityRow]], approx_ks: Sequence[int] = ()
) -> str:
    """Render a whole table (all dataset blocks)."""
    blocks = [
        format_block(name, format_quality_table(rows, approx_ks))
        for name, rows in tables.items()
    ]
    return "\n".join(blocks)


def render_figure(figure: dict[str, dict[str, list[tuple[int, float]]]]) -> str:
    """Render a whole figure (all dataset panels)."""
    blocks = [
        format_block(name, format_series(series)) for name, series in figure.items()
    ]
    return "\n".join(blocks)
