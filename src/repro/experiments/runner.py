"""The per-query experiment protocol of Section VI.

For every workload query the runner measures:

* **MWP** — Algorithm 1 cost (Eqn. 11 on the best candidate) and time;
* **MQP** — Algorithm 2: the best candidate by the *total* Section-VI cost
  (movement outside the safe region plus the repair of every lost
  customer) and the algorithm time;
* **SR** — exact safe-region construction time, area, box count;
* **MWQ** — Algorithm 4 cost (0 in case C1, Eqn. 11 of the why-not
  movement in case C2) and time on top of the safe region;
* **Approx-MWQ** — for each requested ``k``: the same with the sampled
  safe region, after the offline pre-computation of the sampled DSLs
  (excluded from the timing, as in the paper).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.data.dataset import Dataset
from repro.data.workload import WhyNotQuery, build_workload
from repro.experiments.records import ApproxOutcome, DatasetResult, QueryRecord

__all__ = ["run_query", "run_dataset", "make_engine"]


def make_engine(
    dataset: Dataset,
    backend: str = "scan",
    config: WhyNotConfig | None = None,
) -> WhyNotEngine:
    """Engine over a dataset in the paper's monochromatic convention."""
    return WhyNotEngine(
        dataset.points, backend=backend, config=config, bounds=dataset.bounds
    )


def run_query(
    engine: WhyNotEngine,
    workload_query: WhyNotQuery,
    dataset_name: str,
    approx_ks: Sequence[int] = (),
    measure_area: bool = True,
) -> QueryRecord:
    """Execute the full protocol for one (query, why-not) pair."""
    q = workload_query.query
    why_not = workload_query.why_not_position
    record = QueryRecord(
        dataset=dataset_name,
        rsl_size=workload_query.rsl_size,
        query=q,
        why_not_position=why_not,
    )

    # MWP ---------------------------------------------------------------
    start = time.perf_counter()
    mwp = engine.modify_why_not_point(why_not, q)
    record.mwp_time = time.perf_counter() - start
    best_mwp = mwp.best()
    record.mwp_cost = best_mwp.cost if best_mwp is not None else float("nan")

    # MQP (the algorithm itself; its Section-VI score needs the safe
    # region, so the scoring runs after the SR phase below) ---------------
    start = time.perf_counter()
    mqp = engine.modify_query_point(why_not, q)
    record.mqp_time = time.perf_counter() - start

    # Safe region (exact, timed cold — nothing above touches it) ----------
    start = time.perf_counter()
    safe_region = engine.safe_region(q)
    record.sr_time = time.perf_counter() - start
    record.sr_boxes = len(safe_region.region)
    if measure_area:
        record.sr_area = safe_region.area()

    record.mqp_cost = _best_mqp_total_cost(engine, q, mqp.candidates)

    # MWQ (on top of the now-cached safe region) --------------------------
    start = time.perf_counter()
    mwq = engine.modify_both(why_not, q)
    record.mwq_time = time.perf_counter() - start
    record.mwq_cost = mwq.cost
    record.mwq_case = mwq.case.value

    # Approx-MWQ ----------------------------------------------------------
    for k in approx_ks:
        store = engine.approx_store(k)
        # Offline pass (paper: approximated DSLs are pre-computed).
        store.precompute(workload_query.rsl_positions.tolist())

        start = time.perf_counter()
        approx_sr = engine.safe_region(q, approximate=True, k=k)
        approx_sr_time = time.perf_counter() - start

        start = time.perf_counter()
        approx_mwq = engine.modify_both(why_not, q, approximate=True, k=k)
        approx_mwq_time = time.perf_counter() - start

        record.approx[k] = ApproxOutcome(
            k=k,
            cost=approx_mwq.cost,
            sr_time=approx_sr_time,
            mwq_time=approx_mwq_time,
            sr_area=approx_sr.area() if measure_area else float("nan"),
        )
    return record


def _best_mqp_total_cost(
    engine: WhyNotEngine, query: np.ndarray, candidates
) -> float:
    """The Section-VI MQP score: minimum, over the refined-query
    candidates, of safe-region escape cost plus lost-customer repairs."""
    best = float("inf")
    for candidate in candidates:
        total = engine.mqp_total_cost(query, candidate.point)
        if total < best:
            best = total
    return best if np.isfinite(best) else float("nan")


def run_dataset(
    dataset: Dataset,
    targets: Sequence[int] = tuple(range(1, 16)),
    approx_ks: Sequence[int] = (),
    seed: int = 0,
    backend: str = "scan",
    max_attempts: int = 4000,
    measure_area: bool = True,
    config: WhyNotConfig | None = None,
    engine: WhyNotEngine | None = None,
) -> DatasetResult:
    """Build the workload for ``dataset`` and run every query through the
    protocol.  Deterministic for a fixed seed.

    ``config`` customises the engine (e.g. ``WhyNotConfig(trace=True)``
    for an instrumented run); ``engine`` supplies a pre-built one —
    useful when the caller wants to read its observability payload
    afterwards — and takes precedence over ``config``/``backend``.
    """
    if engine is None:
        engine = make_engine(dataset, backend=backend, config=config)
    workload = build_workload(
        engine, targets=targets, seed=seed, max_attempts=max_attempts
    )
    result = DatasetResult(dataset=dataset.name, size=dataset.size)
    for workload_query in workload:
        result.records.append(
            run_query(
                engine,
                workload_query,
                dataset.name,
                approx_ks=approx_ks,
                measure_area=measure_area,
            )
        )
    return result
