"""The Section-VI experiment harness.

``runner`` executes the per-query protocol (MWP / MQP / SR / MWQ /
Approx-MWQ with timings), ``tables`` and ``figures`` project the records
into the paper's Tables III-VI and Figures 14, 15, 17, ``reporting``
renders them as text, and ``cli`` exposes everything as
``repro-whynot <experiment>``.
"""

from repro.experiments.records import DatasetResult, QueryRecord
from repro.experiments.runner import run_dataset, run_query
from repro.experiments.tables import table3, table4, table5, table6
from repro.experiments.figures import figure14, figure15, figure17

__all__ = [
    "QueryRecord",
    "DatasetResult",
    "run_query",
    "run_dataset",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure14",
    "figure15",
    "figure17",
]
