"""Programmatic ablation experiments (our additions beyond the paper).

Three studies that probe the design choices DESIGN.md calls out:

* **index backends** — R*-tree vs uniform grid vs vectorised scan on the
  same window-query workload (time + node accesses);
* **pruning** — BBRS's global-skyline candidate pruning vs the naive
  per-customer test (time + candidates verified);
* **k sweep** — the approximation parameter's quality/area/time trade-off
  on one dataset.

All return plain row dictionaries; the CLI renders them as tables and the
benchmark suite asserts the expected orderings.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.engine import WhyNotEngine
from repro.data.dataset import Dataset
from repro.data.workload import build_workload
from repro.geometry.transform import window_box
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.reverse import reverse_skyline_bbrs, reverse_skyline_naive

__all__ = ["ablation_backends", "ablation_pruning", "ablation_k_sweep"]


def ablation_backends(
    dataset: Dataset, n_queries: int = 50, seed: int = 7
) -> list[dict]:
    """Window-query cost per index backend on one dataset.

    Windows are drawn as reverse-skyline membership tests: centred on data
    points with a nearby jittered query, i.e. the selective shape the
    why-not pipeline issues constantly.
    """
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, dataset.size, size=n_queries)
    centers = dataset.points[picks]
    queries = centers + rng.normal(0, 0.01, size=centers.shape) * (
        dataset.bounds.hi - dataset.bounds.lo
    )
    windows = [window_box(c, q) for c, q in zip(centers, queries)]

    rows = []
    for name, index in (
        ("scan", ScanIndex(dataset.points)),
        ("rtree", RTree(dataset.points)),
        ("grid", GridIndex(dataset.points)),
        ("kdtree", KDTree(dataset.points)),
    ):
        index.reset_stats()
        start = time.perf_counter()
        hits = [index.range_indices(box) for box in windows]
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "backend": name,
                "seconds": elapsed,
                "node_accesses": index.stats.node_accesses,
                "point_comparisons": index.stats.point_comparisons,
                "total_hits": int(sum(h.size for h in hits)),
            }
        )
    # Sanity: all backends must agree on the answers.
    reference = rows[0]["total_hits"]
    for row in rows[1:]:
        if row["total_hits"] != reference:
            raise AssertionError(
                f"backend {row['backend']} disagrees with the scan oracle"
            )
    return rows


def ablation_pruning(
    dataset: Dataset, n_queries: int = 10, seed: int = 7
) -> list[dict]:
    """BBRS pruning vs the naive reverse-skyline computation."""
    rng = np.random.default_rng(seed)
    index = ScanIndex(dataset.points)
    picks = rng.integers(0, dataset.size, size=n_queries)
    queries = dataset.points[picks] + rng.normal(
        0, 0.01, size=(n_queries, dataset.dim)
    ) * (dataset.bounds.hi - dataset.bounds.lo)

    start = time.perf_counter()
    naive = [
        reverse_skyline_naive(index, dataset.points, q, self_exclude=True)
        for q in queries
    ]
    naive_time = time.perf_counter() - start

    start = time.perf_counter()
    bbrs = [
        reverse_skyline_bbrs(index, dataset.points, q, self_exclude=True)
        for q in queries
    ]
    bbrs_time = time.perf_counter() - start

    for a, b in zip(naive, bbrs):
        if not np.array_equal(a, b):
            raise AssertionError("BBRS disagrees with the naive oracle")

    candidates = [
        global_skyline_candidates(
            dataset.points, dataset.points, q, self_exclude=True
        ).size
        for q in queries
    ]
    return [
        {
            "method": "naive",
            "seconds": naive_time,
            "window_queries": dataset.size * n_queries,
        },
        {
            "method": "bbrs",
            "seconds": bbrs_time,
            "window_queries": int(sum(candidates)),
        },
    ]


def ablation_k_sweep(
    dataset: Dataset,
    ks: Sequence[int] = (2, 5, 10, 20, 50),
    targets: Sequence[int] = tuple(range(2, 11)),
    seed: int = 7,
) -> list[dict]:
    """Quality / area / time of Approx-MWQ as the sampling parameter grows."""
    engine = WhyNotEngine(
        dataset.points, backend="scan", bounds=dataset.bounds
    )
    workload = build_workload(engine, targets=targets, seed=seed)
    if not workload:
        return []
    exact_costs = []
    exact_areas = []
    for wq in workload:
        exact_areas.append(engine.safe_region(wq.query).area())
        exact_costs.append(
            engine.modify_both(wq.why_not_position, wq.query).cost
        )
    rows = [
        {
            "k": "exact",
            "mean_cost": float(np.mean(exact_costs)),
            "mean_area_kept": 1.0,
            "seconds": float("nan"),
        }
    ]
    for k in ks:
        store = engine.approx_store(k)
        for wq in workload:
            store.precompute(wq.rsl_positions.tolist())
        start = time.perf_counter()
        costs = []
        kept = []
        for wq, exact_area in zip(workload, exact_areas):
            sr = engine.safe_region(wq.query, approximate=True, k=k)
            kept.append(sr.area() / exact_area if exact_area else 1.0)
            costs.append(
                engine.modify_both(
                    wq.why_not_position, wq.query, approximate=True, k=k
                ).cost
            )
        rows.append(
            {
                "k": k,
                "mean_cost": float(np.mean(costs)),
                "mean_area_kept": float(np.mean(kept)),
                "seconds": time.perf_counter() - start,
            }
        )
    return rows
