"""Tables III-VI of the paper, as projections over experiment records.

* Table III — quality (normalised cost) of MWP / MQP / MWQ on CarDB at
  50K / 100K / 200K rows;
* Table IV — the same on synthetic UN / CO / AC at 100K / 200K;
* Table V — Approx-MWQ(k) vs the exact methods on CarDB;
* Table VI — Approx-MWQ on the synthetic datasets.

Every function takes explicit sizes so the benchmark suite can run scaled-
down instances while the CLI reproduces the paper's sizes with ``--full``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.cardb import generate_cardb
from repro.data.dataset import Dataset
from repro.data.synthetic import SYNTHETIC_GENERATORS
from repro.experiments.records import DatasetResult
from repro.experiments.runner import run_dataset

__all__ = [
    "QualityRow",
    "table3",
    "table4",
    "table5",
    "table6",
    "cardb_datasets",
    "synthetic_datasets",
]

# Paper targets: Table III uses |RSL| 1-15; the synthetic tables only show
# the small sizes the dense data produces.
CARDB_TARGETS = tuple(range(1, 16))
SYNTHETIC_TARGETS = (1, 2, 3, 4)


@dataclass(frozen=True)
class QualityRow:
    """One row of a quality table: costs of each method for one query."""

    dataset: str
    rsl_size: int
    mwp: float
    mqp: float
    mwq: float
    approx: dict[int, float] | None = None


def cardb_datasets(sizes: Sequence[int], seed: int = 7) -> list[Dataset]:
    """The simulated CarDB instances (one seed per size, deterministic)."""
    return [generate_cardb(size, seed=seed + i) for i, size in enumerate(sizes)]


def synthetic_datasets(
    sizes: Sequence[int], kinds: Sequence[str] = ("UN", "CO", "AC"), seed: int = 11
) -> list[Dataset]:
    """UN / CO / AC instances for each size."""
    datasets = []
    for i, size in enumerate(sizes):
        for j, kind in enumerate(kinds):
            generator = SYNTHETIC_GENERATORS[kind]
            datasets.append(generator(size, seed=seed + 13 * i + j))
    return datasets


def _quality_rows(
    result: DatasetResult, approx_ks: Sequence[int] = ()
) -> list[QualityRow]:
    rows = []
    for record in result.sorted_records():
        approx = (
            {k: record.approx[k].cost for k in approx_ks if k in record.approx}
            or None
            if approx_ks
            else None
        )
        rows.append(
            QualityRow(
                dataset=result.dataset,
                rsl_size=record.rsl_size,
                mwp=record.mwp_cost,
                mqp=record.mqp_cost,
                mwq=record.mwq_cost,
                approx=approx,
            )
        )
    return rows


def table3(
    sizes: Sequence[int] = (50_000, 100_000, 200_000),
    seed: int = 7,
    backend: str = "scan",
    targets: Sequence[int] = CARDB_TARGETS,
) -> dict[str, list[QualityRow]]:
    """Table III: MWP vs MQP vs MWQ quality on (simulated) CarDB."""
    out: dict[str, list[QualityRow]] = {}
    for dataset in cardb_datasets(sizes, seed=seed):
        result = run_dataset(
            dataset, targets=targets, seed=seed, backend=backend, measure_area=False
        )
        out[dataset.name] = _quality_rows(result)
    return out


def table4(
    sizes: Sequence[int] = (100_000, 200_000),
    seed: int = 11,
    backend: str = "scan",
    targets: Sequence[int] = SYNTHETIC_TARGETS,
) -> dict[str, list[QualityRow]]:
    """Table IV: quality on uniform / correlated / anti-correlated data."""
    out: dict[str, list[QualityRow]] = {}
    for dataset in synthetic_datasets(sizes, seed=seed):
        result = run_dataset(
            dataset, targets=targets, seed=seed, backend=backend, measure_area=False
        )
        out[dataset.name] = _quality_rows(result)
    return out


def table5(
    sizes: Sequence[int] = (100_000, 200_000),
    ks: Sequence[int] = (10, 20),
    seed: int = 7,
    backend: str = "scan",
    targets: Sequence[int] = CARDB_TARGETS,
) -> dict[str, list[QualityRow]]:
    """Table V: Approx-MWQ(k) against the exact methods on CarDB.

    The paper uses k=10 for CarDB-100K and k=20 for CarDB-200K; running
    both k values everywhere subsumes that choice.
    """
    out: dict[str, list[QualityRow]] = {}
    for dataset in cardb_datasets(sizes, seed=seed):
        result = run_dataset(
            dataset,
            targets=targets,
            approx_ks=ks,
            seed=seed,
            backend=backend,
            measure_area=False,
        )
        out[dataset.name] = _quality_rows(result, approx_ks=ks)
    return out


def table6(
    sizes: Sequence[int] = (100_000, 200_000),
    ks: Sequence[int] = (10,),
    seed: int = 11,
    backend: str = "scan",
    targets: Sequence[int] = SYNTHETIC_TARGETS,
) -> dict[str, list[QualityRow]]:
    """Table VI: Approx-MWQ(k=10) on the synthetic datasets."""
    out: dict[str, list[QualityRow]] = {}
    for dataset in synthetic_datasets(sizes, seed=seed):
        result = run_dataset(
            dataset,
            targets=targets,
            approx_ks=ks,
            seed=seed,
            backend=backend,
            measure_area=False,
        )
        out[dataset.name] = _quality_rows(result, approx_ks=ks)
    return out
