"""A dependency-free asyncio HTTP/1.1 front for :class:`WhyNotService`.

The repo's no-new-dependencies rule extends to the serving layer, so
the transport is ~200 lines of ``asyncio.start_server``: request-line +
headers + Content-Length body in, status + JSON (or Prometheus text)
out, keep-alive honoured.  It deliberately supports only what the
service needs — no chunked encoding, no TLS, no pipelining — and maps
service exceptions onto the admission-control status codes:

========================  ======  =================================
``QueueFullError``        429     bounded queue full, retry later
``DeadlineError``         503     shed past its deadline
``StaleEpochError``       503     retryable epoch race
bad JSON / bad params     400     client error, do not retry
unknown path              404
anything else             500     served as ``{"error": "internal"}``
========================  ======  =================================

Routes: ``POST /why-not``, ``POST /safe-region``, ``POST /explain``,
``POST /mutate``, ``GET /metrics`` (Prometheus text), ``GET /healthz``.
:func:`http_json` is the matching minimal client used by the tests,
the CLI experiment and the benchmark.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.exceptions import ReproError
from repro.serve.admission import ShedError
from repro.serve.serialize import canonical_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.service import WhyNotService

__all__ = ["WhyNotHTTPServer", "http_json"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    pass


class WhyNotHTTPServer:
    """One service, one listening socket, keep-alive connections."""

    def __init__(
        self,
        service: "WhyNotService",
        host: "str | None" = None,
        port: "int | None" = None,
    ) -> None:
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: "asyncio.AbstractServer | None" = None

    async def start(self) -> "WhyNotHTTPServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "WhyNotHTTPServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    _write_response(
                        writer, 400,
                        _json_body({"error": "bad_request",
                                    "detail": str(exc)}),
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, content_type, payload = await self._route(
                    method, path, body
                )
                _write_response(
                    writer, status, payload,
                    content_type=content_type, keep_alive=keep_alive,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple:
        service = self.service
        try:
            if method == "GET" and path == "/healthz":
                return 200, "application/json", _json_body(service.health())
            if method == "GET" and path == "/metrics":
                return (
                    200,
                    "text/plain; version=0.0.4",
                    service.metrics_text().encode(),
                )
            if method != "POST" or path not in (
                "/why-not", "/safe-region", "/explain", "/mutate"
            ):
                return (
                    404 if path not in (
                        "/why-not", "/safe-region", "/explain", "/mutate",
                        "/metrics", "/healthz",
                    ) else 405,
                    "application/json",
                    _json_body({"error": "not_found", "path": path}),
                )
            params = _parse_json(body)
            if path == "/why-not":
                result = await service.why_not(
                    params["why_not"],
                    params["query"],
                    approximate=bool(params.get("approximate", False)),
                    k=int(params.get("k", 10)),
                    deadline_s=params.get("deadline_s"),
                    weights=params.get("weights"),
                )
            elif path == "/safe-region":
                result = await service.safe_region(
                    params["query"],
                    approximate=bool(params.get("approximate", False)),
                    k=int(params.get("k", 10)),
                    deadline_s=params.get("deadline_s"),
                    weights=params.get("weights"),
                )
            elif path == "/explain":
                result = await service.explain(
                    params["why_not"],
                    params["query"],
                    deadline_s=params.get("deadline_s"),
                    weights=params.get("weights"),
                )
            else:  # /mutate
                op = params.pop("op", None)
                if not isinstance(op, str):
                    raise _BadRequest("mutate requires a string 'op' field")
                result = await service.mutate(op, **params)
            return 200, "application/json", _json_body(result)
        except ShedError as exc:
            return exc.status, "application/json", _json_body(exc.payload())
        except (_BadRequest, KeyError, TypeError, ValueError) as exc:
            detail = (
                f"missing field {exc}" if isinstance(exc, KeyError)
                else str(exc)
            )
            return 400, "application/json", _json_body(
                {"error": "bad_request", "detail": detail}
            )
        except ReproError as exc:
            return 400, "application/json", _json_body(
                {"error": type(exc).__name__, "detail": str(exc)}
            )
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return 500, "application/json", _json_body(
                {"error": "internal", "detail": str(exc)}
            )


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------
def _json_body(payload: Any) -> bytes:
    return canonical_json(payload).encode()


def _parse_json(body: bytes) -> dict:
    if not body:
        raise _BadRequest("empty request body; expected JSON")
    try:
        params = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _BadRequest(f"invalid JSON body: {exc}") from exc
    if not isinstance(params, dict):
        raise _BadRequest("JSON body must be an object")
    return params


async def _read_request(reader: asyncio.StreamReader):
    """One request as ``(method, path, headers, body)``; ``None`` at EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > _MAX_HEADER_LINE:
        raise _BadRequest("request line too long")
    try:
        method, path, _version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise _BadRequest("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > _MAX_HEADER_LINE:
            raise _BadRequest("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> None:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: "dict | None" = None,
    reader: "asyncio.StreamReader | None" = None,
    writer: "asyncio.StreamWriter | None" = None,
) -> tuple:
    """Minimal JSON-over-HTTP client: ``(status, parsed_body)``.

    Pass an open ``(reader, writer)`` pair to reuse a keep-alive
    connection (the benchmark does); otherwise one connection is opened
    and closed per call.
    """
    own = reader is None or writer is None
    if own:
        reader, writer = await asyncio.open_connection(host, port)
    assert reader is not None and writer is not None
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if own else 'keep-alive'}\r\n"
        "\r\n"
    )
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""
    finally:
        if own:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
    if headers.get("content-type", "").startswith("application/json") and raw:
        return status, json.loads(raw)
    return status, raw.decode()
