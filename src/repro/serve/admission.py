"""Admission control: bounded queueing, deadlines and load shedding.

A service without admission control does not degrade — it deadlocks or
grows an unbounded queue whose tail latency is infinite.  The
controller here enforces the two bounds a why-not service needs:

* at most ``max_inflight`` requests execute concurrently (the NumPy
  executor has a fixed thread count; admitting more only queues them
  somewhere less observable);
* at most ``max_queue`` requests *wait* for a slot.  Arrival number
  ``max_queue + 1`` is refused immediately (:class:`QueueFullError`,
  the 429 of the HTTP front) rather than queued to time out later —
  shedding early is what keeps the p99 of *admitted* requests bounded.

A queued request that reaches its deadline before a slot frees is shed
with :class:`DeadlineError` (the HTTP 503).  Both are subclasses of
:class:`ShedError`, which carries the HTTP-ish status code so the
transport layer is a dumb mapping.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import Gauge

__all__ = [
    "AdmissionController",
    "DeadlineError",
    "QueueFullError",
    "ShedError",
]


class ShedError(Exception):
    """A request refused by the service rather than answered.

    ``status`` is the HTTP-style status code (429 or 503) and
    ``reason`` a short machine-readable tag; ``retryable`` tells the
    client whether backing off and retrying can succeed.
    """

    status = 503
    reason = "shed"
    retryable = True

    def payload(self) -> dict:
        """The JSON body the HTTP front sends for this refusal."""
        return {"error": self.reason, "retryable": self.retryable,
                "detail": str(self)}


class QueueFullError(ShedError):
    """The admission queue is at capacity (HTTP 429)."""

    status = 429
    reason = "queue_full"


class DeadlineError(ShedError):
    """The request's deadline expired before it could be served
    (HTTP 503)."""

    status = 503
    reason = "deadline_exceeded"


class AdmissionController:
    """Bounded-concurrency, bounded-queue request admission.

    Asyncio-native (single event loop); the gauges, when supplied, track
    queue depth and in-flight count for the ``serve.*`` metrics.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        queue_depth_gauge: "Gauge | None" = None,
        inflight_gauge: "Gauge | None" = None,
    ) -> None:
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._waiting = 0
        self._inflight = 0
        self._queue_depth_gauge = queue_depth_gauge
        self._inflight_gauge = inflight_gauge

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def inflight(self) -> int:
        return self._inflight

    def _set_gauges(self) -> None:
        if self._queue_depth_gauge is not None:
            self._queue_depth_gauge.set(self._waiting)
        if self._inflight_gauge is not None:
            self._inflight_gauge.set(self._inflight)

    async def acquire(self, deadline: float) -> None:
        """Wait for an execution slot; sheds instead of waiting forever.

        ``deadline`` is an absolute ``loop.time()`` instant.  Raises
        :class:`QueueFullError` when the wait queue is full and
        :class:`DeadlineError` when the deadline passes first.
        """
        loop = asyncio.get_running_loop()
        if not self._slots.locked():
            # A slot is free: admit without queueing, so max_queue=0
            # means "never wait", not "never serve".
            await self._slots.acquire()
            self._inflight += 1
            self._set_gauges()
            return
        if self._waiting >= self.max_queue:
            raise QueueFullError(
                f"admission queue full ({self._waiting} waiting, "
                f"limit {self.max_queue})"
            )
        self._waiting += 1
        self._set_gauges()
        try:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise DeadlineError("deadline expired before admission")
            try:
                await asyncio.wait_for(self._slots.acquire(), remaining)
            except asyncio.TimeoutError:
                raise DeadlineError(
                    f"no execution slot within the deadline "
                    f"({self.max_inflight} in flight)"
                ) from None
        finally:
            self._waiting -= 1
            self._set_gauges()
        self._inflight += 1
        self._set_gauges()

    def release(self) -> None:
        self._inflight -= 1
        self._slots.release()
        self._set_gauges()

    def slot(self, deadline: float) -> "_AdmissionSlot":
        """``async with admission.slot(deadline): ...`` — acquire on
        enter, always release on exit."""
        return _AdmissionSlot(self, deadline)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(inflight={self._inflight}/"
            f"{self.max_inflight}, waiting={self._waiting}/{self.max_queue})"
        )


class _AdmissionSlot:
    def __init__(self, controller: AdmissionController, deadline: float):
        self._controller = controller
        self._deadline = deadline

    async def __aenter__(self) -> AdmissionController:
        await self._controller.acquire(self._deadline)
        return self._controller

    async def __aexit__(self, *exc_info) -> None:
        self._controller.release()
