"""Concurrent serving layer over the why-not engine.

The paper's algorithms answer one question at a time on a frozen
dataset; this package turns them into a *service*: a stdlib-asyncio
front that answers many concurrent why-not questions against a mutating
market while preserving the engine's epoch-pinned semantics exactly.

Composition (each piece usable alone):

* :class:`~repro.serve.config.ServeConfig` — validated knobs;
* :mod:`~repro.serve.serialize` — deterministic JSON forms, shared by
  the service and the bit-identity verifiers;
* :class:`~repro.serve.admission.AdmissionController` — bounded queue,
  deadlines, 429/503 shedding;
* :class:`~repro.serve.coalesce.Coalescer` — folds concurrent same-key
  requests into one ``answer_why_not_batch`` dispatch;
* :class:`~repro.serve.service.WhyNotService` — the composition root:
  leases + plan pool + thread executor + single writer task;
* :class:`~repro.serve.http.WhyNotHTTPServer` — dependency-free
  HTTP/1.1 front (``/why-not``, ``/safe-region``, ``/explain``,
  ``/mutate``, ``/metrics``, ``/healthz``).

Layering: serve sits *above* core/plan/store/obs and nothing inside
``repro`` (except the experiments CLI) may import it — enforced by
``tests/test_layering.py`` and the CI check.
"""

from repro.serve.admission import (
    AdmissionController,
    DeadlineError,
    QueueFullError,
    ShedError,
)
from repro.serve.coalesce import Coalescer
from repro.serve.config import ServeConfig
from repro.serve.http import WhyNotHTTPServer, http_json
from repro.serve.serialize import (
    canonical_json,
    serialize_answer,
    serialize_explanation,
    serialize_safe_region,
)
from repro.serve.service import MUTATION_OPS, StaleEpochError, WhyNotService

__all__ = [
    "AdmissionController",
    "Coalescer",
    "DeadlineError",
    "MUTATION_OPS",
    "QueueFullError",
    "ServeConfig",
    "ShedError",
    "StaleEpochError",
    "WhyNotHTTPServer",
    "WhyNotService",
    "canonical_json",
    "http_json",
    "serialize_answer",
    "serialize_explanation",
    "serialize_safe_region",
]
