"""The asyncio why-not service: epoch-pinned reads, one writer task.

:class:`WhyNotService` is the serving-layer composition root.  It owns

* a **read path** — admission control → snapshot lease → (optionally
  coalesced) kernel dispatch on a thread executor → deterministic
  serialisation.  Every read runs under a
  :class:`~repro.store.lease.SnapshotLease`, so the dataset generation
  it pins is the generation every plan in the request executes against;
* a **writer task** — the single consumer of the mutation queue.  Each
  batch drains outstanding leases (blocking new ones, so readers cannot
  starve the writer), applies the mutations under the engine's write
  gate, publishes the new epoch, re-pins the service session and prunes
  the plan pool's dead generation;
* the **serve.`*`** metrics, registered on the engine's own registry so
  the existing Prometheus exporter renders everything in one scrape.

The service never blocks the event loop: NumPy work runs in a dedicated
:class:`~concurrent.futures.ThreadPoolExecutor`, and the two blocking
lease operations (contended ``acquire``, writer ``drain``) run in the
default executor so saturated kernel threads cannot deadlock admission.
Responses are bit-identical to direct engine calls — the benchmark and
the CLI experiment verify that end to end.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Any, Awaitable, Callable, Sequence

import numpy as np

from repro.core.batch import answer_why_not, answer_why_not_batch
from repro.exceptions import InvalidParameterError, StaleSessionError
from repro.obs.exporters import to_prometheus
from repro.plan.pool import PlanPool
from repro.prefs.model import PreferenceModel
from repro.serve.admission import (
    AdmissionController,
    DeadlineError,
    QueueFullError,
    ShedError,
)
from repro.serve.coalesce import Coalescer
from repro.serve.config import ServeConfig
from repro.serve.serialize import (
    serialize_answer,
    serialize_explanation,
    serialize_safe_region,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine
    from repro.store.lease import SnapshotLease

__all__ = ["MUTATION_OPS", "StaleEpochError", "WhyNotService"]

#: Engine mutators the service accepts over the mutation queue.
MUTATION_OPS = (
    "insert_products",
    "delete_products",
    "update_products",
    "insert_customers",
    "delete_customers",
    "update_customers",
)

_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
)
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class StaleEpochError(ShedError):
    """A read kept racing mutations past its retry budget (HTTP 503).

    Should not occur under the lease protocol — leases block the writer
    while reads are in flight — but the service degrades to a retryable
    refusal rather than a 500 if it ever does.
    """

    status = 503
    reason = "stale_epoch"

    def __init__(self, exc: StaleSessionError) -> None:
        super().__init__(str(exc))
        self.pinned_epoch = exc.pinned_epoch
        self.current_epoch = exc.current_epoch

    def payload(self) -> dict:
        body = super().payload()
        body["pinned_epoch"] = self.pinned_epoch
        body["current_epoch"] = self.current_epoch
        return body


def _freeze_why_not(why_not: Any) -> "int | tuple":
    """A hashable, batchable form of one why-not reference."""
    if isinstance(why_not, (int, np.integer)):
        return int(why_not)
    return tuple(float(v) for v in np.asarray(why_not, dtype=np.float64))


def _freeze_weights(weights: Any) -> "tuple | None":
    """A hashable form of a request's preference weights."""
    if weights is None:
        return None
    return tuple(float(v) for v in np.asarray(weights, dtype=np.float64))


class WhyNotService:
    """Concurrent serving facade over one :class:`WhyNotEngine`.

    The service takes ownership of the engine: :meth:`stop` closes it
    (satellite lifecycle contract).  Construction makes the engine's
    metrics registry thread-safe; :meth:`start` must run inside the
    event loop that will serve requests.
    """

    def __init__(
        self, engine: "WhyNotEngine", config: "ServeConfig | None" = None
    ) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        engine.enable_thread_safety()
        self.pool = PlanPool(engine)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self._running = False
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._mutations: "asyncio.Queue | None" = None
        self._writer_task: "asyncio.Task | None" = None
        self.admission: "AdmissionController | None" = None
        self.coalescer: "Coalescer | None" = None
        self._install_metrics()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _install_metrics(self) -> None:
        obs = self.engine.obs
        self.m_requests = obs.counter(
            "serve.requests", "read requests received"
        )
        self.m_completed = obs.counter(
            "serve.completed", "read requests answered"
        )
        self.m_errors = obs.counter(
            "serve.errors", "read requests failed with a non-shed error"
        )
        self.m_coalesced = obs.counter(
            "serve.coalesced", "requests folded into an existing batch"
        )
        self.m_batches = obs.counter(
            "serve.batches", "coalesced kernel dispatches"
        )
        self.m_shed_queue = obs.counter(
            "serve.shed_queue", "requests refused with a full queue (429)"
        )
        self.m_shed_deadline = obs.counter(
            "serve.shed_deadline", "requests shed past their deadline (503)"
        )
        self.m_stale_retries = obs.counter(
            "serve.stale_retries", "reads retried after a stale epoch"
        )
        self.m_mutations = obs.counter(
            "serve.mutations", "mutations applied by the writer task"
        )
        self.m_drains = obs.counter(
            "serve.drains", "writer drain cycles completed"
        )
        self.m_drained_leases = obs.counter(
            "serve.drained_leases", "read leases waited out by drains"
        )
        self.g_queue_depth = obs.gauge(
            "serve.queue_depth", "requests waiting for admission"
        )
        self.g_inflight = obs.gauge(
            "serve.inflight", "requests past admission, not yet answered"
        )
        self.g_epoch = obs.gauge(
            "serve.epoch", "dataset epoch the writer last published"
        )
        self.g_epoch.set(self.engine.dataset_epoch)
        self.h_latency = {
            surface: obs.histogram(
                f"serve.latency_{surface}",
                f"end-to-end seconds of served {surface} requests",
                buckets=_LATENCY_BUCKETS,
            )
            for surface in ("why_not", "safe_region", "explain")
        }
        self.h_batch_size = obs.histogram(
            "serve.batch_size", "why-not requests per kernel dispatch",
            buckets=_BATCH_BUCKETS,
        )

    def _on_batch(self, size: int) -> None:
        self.m_batches.inc()
        if size > 1:
            self.m_coalesced.inc(size - 1)
        self.h_batch_size.observe(size)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    async def start(self) -> "WhyNotService":
        """Bind to the running loop and launch the writer task."""
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._mutations = asyncio.Queue()
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue,
            queue_depth_gauge=self.g_queue_depth,
            inflight_gauge=self.g_inflight,
        )
        self.coalescer = Coalescer(
            self._dispatch_batch,
            window_s=self.config.coalesce_window_s,
            max_batch=self.config.max_batch,
            on_batch=self._on_batch,
        )
        self._running = True
        self._writer_task = self._loop.create_task(self._writer_loop())
        return self

    async def stop(self) -> None:
        """Stop the writer, tear down the executor, close the engine."""
        if self._running:
            self._running = False
            assert self._mutations is not None
            await self._mutations.put(None)
            if self._writer_task is not None:
                await self._writer_task
                self._writer_task = None
        self._executor.shutdown(wait=True)
        self.engine.close()

    async def __aenter__(self) -> "WhyNotService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _resolve_prefs(self, weights: Any) -> "PreferenceModel":
        """Validate request weights into a preference model *before*
        admission, so a malformed vector is a structured 400 and never
        occupies an execution slot (``None`` = the engine default)."""
        if weights is None:
            return self.engine.prefs
        return PreferenceModel.resolve(
            weights, self.engine.config.policy, self.engine.dim
        )

    async def why_not(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        deadline_s: "float | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> dict:
        """Serve one composite why-not answer (coalesced when enabled)."""
        q = np.asarray(query, dtype=np.float64)
        frozen = _freeze_why_not(why_not)
        prefs_fp = self._resolve_prefs(weights).fingerprint()
        frozen_w = _freeze_weights(weights)

        async def run(lease: "SnapshotLease") -> dict:
            if self.config.coalesce:
                # Keyed on the preference fingerprint (plus the raw
                # vector the dispatch re-threads): requests differing
                # only in weights never share a batch.
                key = (
                    lease.epoch,
                    q.tobytes(),
                    bool(approximate),
                    int(k),
                    prefs_fp,
                    frozen_w,
                )
                assert self.coalescer is not None
                return await self.coalescer.submit(key, frozen)
            answer = await self._in_executor(
                partial(
                    answer_why_not,
                    self.engine,
                    frozen,
                    q,
                    approximate=approximate,
                    k=k,
                    weights=frozen_w,
                )
            )
            return serialize_answer(answer)

        return await self._serve("why_not", run, deadline_s)

    async def safe_region(
        self,
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        deadline_s: "float | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> dict:
        """Serve ``SR(q)`` through the per-epoch prepared-plan pool."""
        q = np.asarray(query, dtype=np.float64)
        self._resolve_prefs(weights)
        frozen_w = _freeze_weights(weights)

        async def run(lease: "SnapshotLease") -> dict:
            def work() -> dict:
                prepared = self.pool.prepare(
                    "safe_region", q, approximate=approximate, k=k,
                    weights=frozen_w,
                )
                return serialize_safe_region(prepared.execute())

            return await self._in_executor(work)

        return await self._serve("safe_region", run, deadline_s)

    async def explain(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        deadline_s: "float | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> dict:
        """Serve the Λ explanation through the prepared-plan pool."""
        q = np.asarray(query, dtype=np.float64)
        frozen = _freeze_why_not(why_not)
        self._resolve_prefs(weights)
        frozen_w = _freeze_weights(weights)

        async def run(lease: "SnapshotLease") -> dict:
            def work() -> dict:
                prepared = self.pool.prepare(
                    "explain", frozen, q, weights=frozen_w
                )
                return serialize_explanation(prepared.execute())

            return await self._in_executor(work)

        return await self._serve("explain", run, deadline_s)

    async def _serve(
        self,
        surface: str,
        run: "Callable[[SnapshotLease], Awaitable[dict]]",
        deadline_s: "float | None",
    ) -> dict:
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        assert self.admission is not None
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        self.m_requests.inc()
        try:
            async with self.admission.slot(deadline):
                attempts = self.config.stale_retries + 1
                for attempt in range(attempts):
                    lease = await self._acquire_lease(deadline)
                    try:
                        result = await run(lease)
                    except StaleSessionError as exc:
                        self.m_stale_retries.inc()
                        if attempt + 1 >= attempts:
                            raise StaleEpochError(exc) from exc
                        continue
                    finally:
                        lease.release()
                    self.h_latency[surface].observe(loop.time() - started)
                    self.m_completed.inc()
                    return {
                        "epoch": lease.epoch,
                        "surface": surface,
                        "result": result,
                    }
                raise AssertionError("unreachable: retry loop exhausted")
        except QueueFullError:
            self.m_shed_queue.inc()
            raise
        except (DeadlineError, StaleEpochError):
            self.m_shed_deadline.inc()
            raise
        except ShedError:
            raise
        except Exception:
            self.m_errors.inc()
            raise

    async def _acquire_lease(self, deadline: float) -> "SnapshotLease":
        """A snapshot lease, without blocking the event loop.

        Uncontended acquisition is a non-blocking fast path; while a
        writer drains, the wait moves to the *default* executor (not the
        kernel executor — saturated kernel threads must not be able to
        deadlock lease admission)."""
        leases = self.engine.leases
        try:
            return leases.acquire(timeout=0.0)
        except TimeoutError:
            pass
        loop = asyncio.get_running_loop()
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise DeadlineError("deadline expired waiting for the writer")
        try:
            return await loop.run_in_executor(
                None, partial(leases.acquire, timeout=remaining)
            )
        except TimeoutError:
            raise DeadlineError(
                "writer drain outlasted the request deadline"
            ) from None

    async def _in_executor(self, fn: Callable[[], Any]) -> Any:
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, fn)

    async def _dispatch_batch(self, key: tuple, payloads: list) -> list:
        """Coalescer dispatch: one batched kernel call for the group."""
        epoch, query_bytes, approximate, k, _prefs_fp, frozen_w = key
        q = np.frombuffer(query_bytes, dtype=np.float64)
        answers = await self._in_executor(
            partial(
                answer_why_not_batch,
                self.engine,
                list(payloads),
                q,
                approximate=approximate,
                k=k,
                weights=frozen_w,
            )
        )
        return [serialize_answer(answer) for answer in answers]

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    async def mutate(self, op: str, **payload) -> dict:
        """Queue one mutation for the writer task; resolves once it has
        been applied and the new epoch published."""
        if op not in MUTATION_OPS:
            raise InvalidParameterError(
                f"unknown mutation op {op!r}; expected one of "
                f"{', '.join(MUTATION_OPS)}"
            )
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        assert self._loop is not None and self._mutations is not None
        future: asyncio.Future = self._loop.create_future()
        await self._mutations.put((op, payload, future))
        return await future

    async def _writer_loop(self) -> None:
        assert self._mutations is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._mutations.get()
            if item is None:
                if not self._running:
                    break
                continue
            batch = [item]
            while True:  # fold every already-queued mutation into the drain
                try:
                    nxt = self._mutations.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    continue  # stop sentinel; the running flag decides
                batch.append(nxt)
            ops = [(op, payload) for op, payload, _ in batch]
            try:
                outcomes = await loop.run_in_executor(
                    None, partial(self._apply_batch, ops)
                )
            except Exception as exc:  # drain timeout fails the whole batch
                for _, _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            self.pool.prune_stale()
            for (_, _, future), (ok, value) in zip(batch, outcomes):
                if future.done():
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)
            if not self._running and self._mutations.empty():
                break

    def _apply_batch(self, ops: list) -> list:
        """One drain cycle: runs in a worker thread, never on the loop."""
        engine = self.engine
        drained_before = engine.leases.drained_leases_total
        outcomes: list = []
        with engine.leases.drain(timeout=self.config.drain_timeout_s):
            for op, payload in ops:
                try:
                    value = getattr(engine, op)(**payload)
                    self.m_mutations.inc()
                    outcomes.append(
                        (
                            True,
                            {
                                "op": op,
                                "epoch": engine.dataset_epoch,
                                "result": np.asarray(value).tolist(),
                            },
                        )
                    )
                except Exception as exc:  # noqa: BLE001 - per-op failure
                    outcomes.append((False, exc))
        self.m_drains.inc()
        self.m_drained_leases.inc(
            engine.leases.drained_leases_total - drained_before
        )
        self.g_epoch.set(engine.dataset_epoch)
        return outcomes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The full registry (engine + serve) in Prometheus text format."""
        return to_prometheus(self.engine.obs.metrics)

    def health(self) -> dict:
        return {
            "status": "ok" if self._running else "stopped",
            "epoch": self.engine.dataset_epoch,
            "published_epoch": self.engine.leases.published_epoch,
            "inflight": 0 if self.admission is None else self.admission.inflight,
            "queue_depth": 0 if self.admission is None else self.admission.waiting,
            "leases": self.engine.leases.active,
            "pool_entries": len(self.pool),
        }

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"WhyNotService({state}, epoch={self.engine.dataset_epoch})"
