"""Serving-layer configuration.

:class:`ServeConfig` is the serve-side sibling of
:class:`~repro.config.WhyNotConfig`: a frozen, validated dataclass so a
service's admission, coalescing and drain knobs are fixed at
construction and visible in ``repr``.  Everything defaults to values
that behave on a small machine; benchmarks and tests override per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidParameterError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.service.WhyNotService`.

    Attributes
    ----------
    max_inflight:
        Requests allowed past admission concurrently; the rest queue.
    max_queue:
        Requests allowed to *wait* for admission; arrivals beyond this
        are shed immediately with a 429-style refusal.
    default_deadline_s:
        Per-request deadline when the caller supplies none; a request
        still queued (or waiting on a writer drain) past its deadline is
        shed with a 503-style refusal instead of deadlocking.
    coalesce:
        Fold concurrent why-not requests for the same (epoch, query,
        approximate, k) into one ``answer_why_not_batch`` call.
    coalesce_window_s:
        How long the first request of a batch waits for companions.
    max_batch:
        Batch size that triggers an immediate flush before the window
        elapses.
    executor_threads:
        Worker threads running the NumPy kernels (the asyncio loop never
        blocks on them).
    drain_timeout_s:
        How long the writer waits for outstanding read leases before a
        mutation batch fails.
    stale_retries:
        Times a read is retried under a fresh lease after a
        :class:`~repro.exceptions.StaleSessionError` (should not happen
        under the lease protocol; kept as a safety valve).
    host / port:
        Bind address of the optional HTTP front; port 0 picks an
        ephemeral port.
    """

    max_inflight: int = 8
    max_queue: int = 64
    default_deadline_s: float = 10.0
    coalesce: bool = True
    coalesce_window_s: float = 0.002
    max_batch: int = 32
    executor_threads: int = 2
    drain_timeout_s: float = 30.0
    stale_retries: int = 1
    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise InvalidParameterError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise InvalidParameterError("max_queue must be >= 0")
        if self.default_deadline_s <= 0:
            raise InvalidParameterError("default_deadline_s must be > 0")
        if self.coalesce_window_s < 0:
            raise InvalidParameterError("coalesce_window_s must be >= 0")
        if self.max_batch < 1:
            raise InvalidParameterError("max_batch must be >= 1")
        if self.executor_threads < 1:
            raise InvalidParameterError("executor_threads must be >= 1")
        if self.drain_timeout_s <= 0:
            raise InvalidParameterError("drain_timeout_s must be > 0")
        if self.stale_retries < 0:
            raise InvalidParameterError("stale_retries must be >= 0")
        if not 0 <= self.port <= 65535:
            raise InvalidParameterError("port must be in [0, 65535]")
