"""Request coalescing: fold concurrent identical-context requests into
one batched kernel dispatch.

``answer_why_not_batch`` amortises the safe-region construction and the
blocked membership kernel across every why-not question that shares a
query — exactly the shape a serving workload produces when many clients
ask about the same query point.  The :class:`Coalescer` exploits that
without any cross-request state: the first request for a batch key
opens a micro-batch and waits ``window_s`` for companions; requests
arriving inside the window join it; the batch dispatches once, and
every member gets its own answer back.

The key is opaque to the coalescer.  The service keys batches by
``(epoch, query bytes, approximate, k)`` so members are guaranteed to
share a dataset generation and batch semantics — two requests that
could not legally share a kernel call never share a batch.

All bookkeeping runs on the event loop (no locks); only the dispatch
callable may block, and the service runs it in the thread executor.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable

__all__ = ["Coalescer"]

Dispatch = Callable[[Hashable, list], Awaitable[list]]


class _Batch:
    __slots__ = ("key", "items", "closed", "wake")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.items: list[tuple[Any, asyncio.Future]] = []
        self.closed = False
        self.wake = asyncio.Event()


class Coalescer:
    """Micro-batching front for an async batch dispatcher.

    Parameters
    ----------
    dispatch:
        ``async (key, payloads) -> results`` returning one result per
        payload, in order.  An exception fails every member of the
        batch.
    window_s:
        How long the batch opener waits for companions.
    max_batch:
        Flush immediately once this many members joined.
    on_batch:
        Optional callback ``(batch_size) -> None`` invoked per dispatch
        (the service feeds its ``serve.batches`` / ``serve.coalesced``
        counters and batch-size histogram from it).
    """

    def __init__(
        self,
        dispatch: Dispatch,
        window_s: float = 0.002,
        max_batch: int = 32,
        on_batch: "Callable[[int], None] | None" = None,
    ) -> None:
        self._dispatch = dispatch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._on_batch = on_batch
        self._pending: dict[Hashable, _Batch] = {}

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    async def submit(self, key: Hashable, payload: Any) -> Any:
        """Join (or open) the batch for ``key``; returns this payload's
        result once the batch has dispatched."""
        batch = self._pending.get(key)
        if batch is None or batch.closed:
            batch = _Batch(key)
            self._pending[key] = batch
            asyncio.get_running_loop().create_task(self._run(batch))
        future = asyncio.get_running_loop().create_future()
        batch.items.append((payload, future))
        if len(batch.items) >= self.max_batch:
            batch.closed = True
            batch.wake.set()
        return await future

    async def _run(self, batch: _Batch) -> None:
        try:
            if self.window_s > 0:
                try:
                    await asyncio.wait_for(batch.wake.wait(), self.window_s)
                except asyncio.TimeoutError:
                    pass
            batch.closed = True
            if self._pending.get(batch.key) is batch:
                del self._pending[batch.key]
            payloads = [payload for payload, _ in batch.items]
            if self._on_batch is not None:
                self._on_batch(len(payloads))
            results = await self._dispatch(batch.key, payloads)
            if len(results) != len(payloads):  # defensive: dispatcher bug
                raise RuntimeError(
                    f"dispatch returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
            for (_, future), result in zip(batch.items, results):
                if not future.done():
                    future.set_result(result)
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            if self._pending.get(batch.key) is batch:
                del self._pending[batch.key]
            for _, future in batch.items:
                if not future.done():
                    future.set_exception(exc)
