"""Deterministic JSON-able serialisation of engine answers.

The serving layer's correctness claim is *bit-identity*: a response that
travelled through admission, coalescing and the thread executor must
equal the one a direct engine call produces.  That comparison needs a
canonical form on both sides, so the serialisers live here — shared by
the service, the CLI verifier and the benchmark — and are strictly
deterministic: dict keys are fixed, floats pass through ``float()``
untouched (no rounding), arrays become nested lists, and ``NaN`` maps to
``None`` so the output is valid JSON everywhere.

:func:`canonical_json` is the comparison form: sorted keys, no
whitespace.  Two answers are bit-identical iff their canonical JSON
strings are equal.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.answer import Candidate, ModificationResult, MWQResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.answer import Explanation
    from repro.core.batch import WhyNotAnswer
    from repro.core.safe_region import SafeRegion

__all__ = [
    "canonical_json",
    "serialize_answer",
    "serialize_candidate",
    "serialize_explanation",
    "serialize_modification",
    "serialize_mwq",
    "serialize_safe_region",
]


def _num(value: float) -> "float | None":
    """A JSON-safe float: ``NaN``/``inf`` become ``None`` (they have no
    valid JSON spelling), everything else passes through exactly."""
    value = float(value)
    return value if math.isfinite(value) else None


def _vector(arr) -> list:
    return [_num(v) for v in np.asarray(arr, dtype=np.float64).ravel()]


def _matrix(arr) -> list:
    a = np.asarray(arr, dtype=np.float64)
    if a.ndim == 1:
        a = a.reshape(0, 0) if a.size == 0 else a.reshape(1, -1)
    return [[_num(v) for v in row] for row in a]


def _positions(arr) -> list:
    return [int(v) for v in np.asarray(arr).ravel()]


def serialize_candidate(candidate: "Candidate | None") -> "dict | None":
    if candidate is None:
        return None
    return {
        "point": _vector(candidate.point),
        "cost": _num(candidate.cost),
        "verified": candidate.verified,
    }


def serialize_explanation(explanation: "Explanation") -> dict:
    return {
        "why_not": _vector(explanation.why_not),
        "query": _vector(explanation.query),
        "culprit_positions": _positions(explanation.culprit_positions),
        "culprits": _matrix(explanation.culprits),
        "is_member": bool(explanation.is_member),
    }


def serialize_modification(result: ModificationResult) -> dict:
    return {
        "method": result.method,
        "candidates": [serialize_candidate(c) for c in result.candidates],
        "lambda_positions": _positions(result.lambda_positions),
        "frontier_positions": _positions(result.frontier_positions),
        "best": serialize_candidate(result.best()),
    }


def serialize_mwq(result: MWQResult) -> dict:
    best_pair = result.best_pair()
    return {
        "case": result.case.value,
        "cost": _num(result.cost),
        "query_candidates": [
            serialize_candidate(c) for c in result.query_candidates
        ],
        "pairs": [
            [serialize_candidate(q), serialize_candidate(c)]
            for q, c in result.pairs
        ],
        "best_query_candidate": serialize_candidate(
            result.best_query_candidate()
        ),
        "best_pair": (
            None
            if best_pair is None
            else [
                serialize_candidate(best_pair[0]),
                serialize_candidate(best_pair[1]),
            ]
        ),
    }


def _why_not_ref(why_not: Any) -> dict:
    """The question's identity: a customer position or raw coordinates."""
    if isinstance(why_not, (int, np.integer)):
        return {"position": int(why_not)}
    return {"point": _vector(why_not)}


def serialize_answer(answer: "WhyNotAnswer") -> dict:
    """The full composite answer, recommendation included."""
    return {
        "why_not": _why_not_ref(answer.why_not),
        "query": _vector(answer.query),
        "already_member": bool(answer.already_member),
        "explanation": serialize_explanation(answer.explanation),
        "mwp": serialize_modification(answer.mwp),
        "mqp": serialize_modification(answer.mqp),
        "mwq": serialize_mwq(answer.mwq),
        "recommendation": answer.recommendation(),
        "best_cost": _num(answer.best_cost()),
    }


def serialize_safe_region(region: "SafeRegion") -> dict:
    return {
        "query": _vector(region.query),
        "boxes": [
            [_vector(box.lo), _vector(box.hi)] for box in region.region.boxes
        ],
        "area": _num(region.area()),
        "rsl_positions": _positions(region.rsl_positions),
        "approximate": bool(region.approximate),
    }


def canonical_json(payload: Any) -> str:
    """The comparison form: sorted keys, minimal separators, ASCII-safe.
    Equal strings == bit-identical answers."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
