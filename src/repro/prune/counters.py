"""Counters of the filter-refinement pruning layer.

Same discipline as :class:`repro.kernels.membership.KernelCounters`:
the engine creates one bundle when tracing is on, attaches it to the
metrics registry under ``prune.*`` names, and passes it into every
pruned kernel call; ``None`` keeps the hot loops counter-free.

The load-bearing invariant (asserted by the tests, the ``prune`` CLI
experiment and the benchmark) is the pair balance::

    pairs_skipped + pairs_blocked + pairs_refined == pairs_total

Pairs are accounted at **classification** time: when a tile resolves
*all-blocked* every one of its pairs counts as blocked (the exact
kernels never run for it), so the early exit cannot unbalance the
books.
"""

from __future__ import annotations

from repro.obs.metrics import Counter

__all__ = ["PruneCounters"]


class PruneCounters:
    """Live counters of the pruned membership / Λ sweeps.

    Attributes
    ----------
    tiles_skipped:
        Customer tiles fully resolved as members — every product chunk
        classified *skip*, no exact kernel work at all.
    tiles_all_blocked:
        Customer tiles fully resolved as non-members by one *all-blocked*
        chunk (membership sweeps only; Λ counting cannot use the label).
    pairs_skipped:
        (tile, chunk) pairs classified *skip*.
    pairs_blocked:
        Pairs charged to an *all-blocked* tile resolution.
    pairs_refined:
        Pairs that fell through to the exact blocked kernels.
    pairs_total:
        Every pair classified; equals the sum of the three above.
    """

    __slots__ = (
        "tiles_skipped",
        "tiles_all_blocked",
        "pairs_skipped",
        "pairs_blocked",
        "pairs_refined",
        "pairs_total",
    )

    def __init__(self) -> None:
        self.tiles_skipped = Counter("tiles_skipped")
        self.tiles_all_blocked = Counter("tiles_all_blocked")
        self.pairs_skipped = Counter("pairs_skipped")
        self.pairs_blocked = Counter("pairs_blocked")
        self.pairs_refined = Counter("pairs_refined")
        self.pairs_total = Counter("pairs_total")

    def counters(self) -> dict[str, Counter]:
        return {name: getattr(self, name) for name in self.__slots__}

    def snapshot(self) -> dict[str, int]:
        return {name: int(getattr(self, name).value) for name in self.__slots__}

    def balanced(self) -> bool:
        """The skipped + blocked + refined == total invariant."""
        return (
            int(self.pairs_skipped.value)
            + int(self.pairs_blocked.value)
            + int(self.pairs_refined.value)
            == int(self.pairs_total.value)
        )
