"""Epoch-versioned tile summaries over the versioned stores.

A :class:`TileSummary` mirrors one :class:`~repro.store.base.
VersionedStore` with per-tile AABBs of its matrix, kept coherent by a
post-commit subscription: inserts recompute only the trailing partial
tile plus the appended ones, updates only the tiles containing the
touched rows, deletes from the tile containing the first removed row
onward (rows below it never move — the store compacts downward).  The
summary therefore always describes the *current* matrix at the store's
current epoch, at incremental cost proportional to the mutation's
locality rather than the matrix size.

:class:`PruneSummaries` is the engine-facing bundle: the product-chunk
summary feeds the pruned kernels directly (every sweep scans the same
product matrix, so its AABBs are the shared, reusable side — customer
tile bounds are recomputed inline per sweep because probe sets are
arbitrary subsets), and both summaries feed the planner's selectivity
probe (:meth:`PruneSummaries.predict`), memoized per epoch pair.
"""

from __future__ import annotations

import numpy as np

from repro.prune.classify import (
    PAIR_BLOCKED,
    PAIR_SKIP,
    classify_pairs,
    tile_bounds,
    tile_count,
)
from repro.store.base import Mutation, VersionedStore

__all__ = ["PruneSummaries", "TileSummary"]


class TileSummary:
    """Per-tile AABBs of one store's matrix, incrementally maintained.

    Attributes
    ----------
    tiles_rebuilt:
        Lifetime count of tile AABBs recomputed by incremental
        maintenance — the observability hook the tests use to pin that
        a local mutation does *not* trigger a full rebuild.
    """

    def __init__(self, store: VersionedStore, tile_size: int) -> None:
        if tile_size < 1:
            raise ValueError("tile_size must be a positive integer")
        self.store = store
        self.tile_size = int(tile_size)
        self._lo, self._hi = tile_bounds(store.matrix, self.tile_size)
        self.epoch = store.epoch
        self.tiles_rebuilt = 0
        store.subscribe(self._on_commit)

    @property
    def tiles(self) -> int:
        return self._lo.shape[0]

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` tile AABB matrices for the current matrix."""
        if self.epoch != self.store.epoch:  # pragma: no cover - defensive
            self._rebuild_all()
        return self._lo, self._hi

    def _rebuild_all(self) -> None:
        self._lo, self._hi = tile_bounds(self.store.matrix, self.tile_size)
        self.epoch = self.store.epoch
        self.tiles_rebuilt += self._lo.shape[0]

    def _rebuild_from(self, first_tile: int) -> None:
        """Recompute tiles ``first_tile`` onward against the current
        matrix (rows below ``first_tile * tile_size`` are unchanged and
        unmoved, so their AABBs still hold)."""
        matrix = self.store.matrix
        t = self.tile_size
        tail_lo, tail_hi = tile_bounds(matrix[first_tile * t :], t)
        self._lo = np.concatenate([self._lo[:first_tile], tail_lo])
        self._hi = np.concatenate([self._hi[:first_tile], tail_hi])
        self.tiles_rebuilt += tail_lo.shape[0]

    def _on_commit(self, mutation: Mutation) -> None:
        if mutation.is_noop:
            return
        t = self.tile_size
        matrix = self.store.matrix
        if mutation.kind == "update":
            # Rows keep their positions; only tiles containing them move.
            for tile in np.unique(mutation.positions // t):
                seg = matrix[tile * t : (tile + 1) * t]
                self._lo[int(tile)] = seg.min(axis=0)
                self._hi[int(tile)] = seg.max(axis=0)
                self.tiles_rebuilt += 1
        elif mutation.kind == "insert":
            # Appended rows: the previous last (possibly partial) tile
            # and everything after it are the only tiles that change.
            old_rows = matrix.shape[0] - mutation.positions.size
            self._rebuild_from(int(old_rows // t))
        else:  # delete: survivors shift down from the first removed row.
            self._rebuild_from(int(mutation.positions.min() // t))
        self.epoch = mutation.epoch

    def _on_update_writable(self) -> None:  # pragma: no cover - helper
        pass


class PruneSummaries:
    """The engine's summary bundle: product chunks + customer tiles.

    In the monochromatic convention both stores are one object and the
    two summaries are one object too — one subscription, one rebuild.
    """

    def __init__(
        self,
        product_store: VersionedStore,
        customer_store: VersionedStore,
        tile_size: int,
    ) -> None:
        self.tile_size = int(tile_size)
        self.products = TileSummary(product_store, self.tile_size)
        self.customers = (
            self.products
            if customer_store is product_store
            else TileSummary(customer_store, self.tile_size)
        )
        self._predictions: dict[tuple, dict] = {}

    def product_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Product-chunk AABBs for the pruned kernels."""
        return self.products.bounds

    def predict(self, query: np.ndarray, rtol: float = 0.0) -> dict:
        """Classify every (customer-tile, product-chunk) pair for
        ``query`` and return the label fractions — the planner's
        selectivity estimate.  Memoized per (epoch, query) because
        ``DatasetStats`` is sampled on every plan-cache miss.
        """
        q = np.asarray(query, dtype=np.float64).reshape(-1)
        key = (
            self.products.epoch,
            self.customers.epoch,
            q.tobytes(),
            float(rtol),
        )
        cached = self._predictions.get(key)
        if cached is not None:
            return cached
        cust_lo, cust_hi = self.customers.bounds
        prod_lo, prod_hi = self.products.bounds
        pairs = cust_lo.shape[0] * prod_lo.shape[0]
        if pairs == 0:
            result = {
                "pairs": 0,
                "skip": 0.0,
                "blocked": 0.0,
                "refine": 1.0,
            }
        else:
            labels = classify_pairs(
                cust_lo, cust_hi, prod_lo, prod_hi, q, rtol=rtol
            )
            skip = int(np.count_nonzero(labels == PAIR_SKIP))
            blocked = int(np.count_nonzero(labels == PAIR_BLOCKED))
            result = {
                "pairs": pairs,
                "skip": skip / pairs,
                "blocked": blocked / pairs,
                "refine": (pairs - skip - blocked) / pairs,
            }
        # The memo only needs the current generation; one entry per
        # rtol value (0 and the verify tolerance) is plenty.
        self._predictions = {key: result}
        return result

    def predicted_refine_rate(
        self, query: np.ndarray, rtol: float = 0.0
    ) -> float:
        """Fraction of pairs the pruned kernels would refine exactly —
        the number the cost model multiplies into the kernel term."""
        return float(self.predict(query, rtol=rtol)["refine"])

    def centroid_refine_rate(self) -> float:
        """Refine rate at the dataset centroid — the representative
        probe :meth:`repro.plan.cost.DatasetStats.of` samples when no
        concrete query is in scope (plans are cached across queries).
        A centroid query has the least prunable geometry of any point
        inside the data, so this is a conservative (pessimistic)
        selectivity estimate."""
        cust_lo, cust_hi = self.customers.bounds
        prod_lo, prod_hi = self.products.bounds
        if cust_lo.shape[0] == 0 or prod_lo.shape[0] == 0:
            return 1.0
        lo = np.minimum(cust_lo.min(axis=0), prod_lo.min(axis=0))
        hi = np.maximum(cust_hi.max(axis=0), prod_hi.max(axis=0))
        return self.predicted_refine_rate((lo + hi) / 2.0)
