"""Tile-summary filter-refinement pruning.

Layering: ``repro.prune`` may import ``repro.store``, ``repro.obs``
and ``repro.exceptions`` only.  The kernels import
*us* (``repro.kernels.pruned``), the planner imports the kernels —
never the other way around.
"""

from repro.prune.classify import (
    PAIR_BLOCKED,
    PAIR_REFINE,
    PAIR_SKIP,
    classify_pairs,
    tile_bounds,
    tile_count,
)
from repro.prune.counters import PruneCounters
from repro.prune.summaries import PruneSummaries, TileSummary

__all__ = [
    "PAIR_BLOCKED",
    "PAIR_REFINE",
    "PAIR_SKIP",
    "PruneCounters",
    "PruneSummaries",
    "TileSummary",
    "classify_pairs",
    "tile_bounds",
    "tile_count",
]
