"""Conservative (tile, chunk) classification for filter-refinement.

The membership and Λ kernels decide, per (customer, product) pair,
whether the product falls strictly/weakly inside the customer's window
around the query.  For most (customer-tile, product-chunk) pairs that
outcome is already decided by the bounding boxes alone:

* **skip** — some dimension keeps every chunk product farther from
  every tile customer than the widest window the tile can produce, so
  no chunk product can fall in any window (contributes nothing to
  membership or Λ);
* **all-blocked** — every point of the chunk box is strictly closer to
  every tile customer than the query in every dimension, so every
  chunk product blocks every tile customer (membership resolves to
  ``False`` for the whole tile without exact tests);
* **refine** — the boxes straddle a window boundary; fall through to
  the exact blocked kernels.

Soundness under floating point: tile/chunk corners are exact stored
coordinates (mins/maxes of data values, no rounding), every bound here
is one rounded arithmetic op on them, and IEEE rounding is monotone —
so the computed ``dmin``/``dmax``/radius bounds dominate the kernels'
per-pair computed distances, and a strict comparison against them is
conservative.  Both labels are sound under both dominance policies
(strict blocking implies weak blocking; "outside the closed window"
implies no blocking under either), so the classifier takes no policy
argument.  ``rtol`` widens both thresholds by an upper bound of the
kernels' per-customer slack so the verification kernel can prune too.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PAIR_SKIP",
    "PAIR_BLOCKED",
    "PAIR_REFINE",
    "classify_pairs",
    "tile_bounds",
    "tile_count",
]

PAIR_SKIP = np.int8(0)
PAIR_BLOCKED = np.int8(1)
PAIR_REFINE = np.int8(2)


def tile_count(rows: int, tile_size: int) -> int:
    """Number of contiguous row tiles of width ``tile_size``."""
    return -(-int(rows) // int(tile_size))


def tile_bounds(
    points: np.ndarray, tile_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-tile AABBs ``(lo, hi)`` of contiguous ``tile_size`` row runs.

    Tiles follow row order (tile ``t`` covers rows ``[t * tile_size,
    (t + 1) * tile_size)``), matching the blocked kernels' iteration, so
    a summary row describes exactly one kernel tile.  Corners are exact
    coordinate values — no arithmetic, hence no rounding.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be a positive integer")
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise ValueError(f"points must be a matrix, got shape {pts.shape}")
    if pts.shape[0] == 0:
        empty = np.empty((0, pts.shape[1]), dtype=pts.dtype)
        return empty, empty.copy()
    starts = np.arange(0, pts.shape[0], tile_size)
    lo = np.minimum.reduceat(pts, starts, axis=0)
    hi = np.maximum.reduceat(pts, starts, axis=0)
    return lo, hi


def classify_pairs(
    cust_lo: np.ndarray,
    cust_hi: np.ndarray,
    prod_lo: np.ndarray,
    prod_hi: np.ndarray,
    query: np.ndarray,
    rtol: float = 0.0,
) -> np.ndarray:
    """``(tiles, chunks)`` int8 label matrix over AABB pairs.

    For customer tile ``[cl, ch]`` the per-dimension window radius of
    any member customer lies in ``[rlo, rhi]`` with ``rhi = max(|cl-q|,
    |ch-q|)`` and ``rlo = 0`` if ``q`` falls inside the interval else
    ``min(|cl-q|, |ch-q|)``.  For product chunk ``[pl, ph]`` the
    customer-product distance lies in ``[dmin, dmax]``.  Then:

    * ``dmin > rhi + slack`` in **any** dimension → no chunk product can
      enter any tile window → :data:`PAIR_SKIP`;
    * ``dmax < rlo - slack`` in **every** dimension → every chunk-box
      point strictly blocks every tile customer → :data:`PAIR_BLOCKED`;
    * otherwise :data:`PAIR_REFINE`.

    ``slack`` is an upper bound of the kernels' per-customer tolerance
    (``rtol * max(1, max |coordinate|)`` over the tile and the query);
    with ``rtol == 0`` it vanishes and the thresholds are exact.
    """
    cust_lo = np.atleast_2d(np.asarray(cust_lo))
    cust_hi = np.atleast_2d(np.asarray(cust_hi))
    prod_lo = np.atleast_2d(np.asarray(prod_lo))
    prod_hi = np.atleast_2d(np.asarray(prod_hi))
    q = np.asarray(query).reshape(-1)
    tiles, dim = cust_lo.shape
    chunks = prod_lo.shape[0]
    if rtol > 0.0 and tiles:
        scale = np.maximum(
            1.0,
            np.max(
                np.maximum(np.abs(cust_lo), np.abs(cust_hi)),
                axis=1,
                initial=np.max(np.abs(q)),
            ),
        )
        slack = (rtol * scale)[:, None]  # (tiles, 1)
    else:
        slack = 0.0
    skip = np.zeros((tiles, chunks), dtype=bool)
    blocked = np.ones((tiles, chunks), dtype=bool)
    # Fold the dimension axis in a Python loop (d is small) so the live
    # intermediates stay (tiles, chunks) — same memory shape discipline
    # as the exact kernels.
    for d in range(dim):
        cl = cust_lo[:, d, None]
        ch = cust_hi[:, d, None]
        lo_dist = np.abs(cl - q[d])
        hi_dist = np.abs(ch - q[d])
        rhi = np.maximum(lo_dist, hi_dist)
        rlo = np.where(
            (cl <= q[d]) & (q[d] <= ch),
            0.0,
            np.minimum(lo_dist, hi_dist),
        )
        pl = prod_lo[None, :, d]
        ph = prod_hi[None, :, d]
        dmin = np.maximum(np.maximum(pl - ch, cl - ph), 0.0)
        dmax = np.maximum(ph - cl, ch - pl)
        skip |= dmin > rhi + slack
        blocked &= dmax < rlo - slack
    labels = np.full((tiles, chunks), PAIR_REFINE, dtype=np.int8)
    labels[blocked] = PAIR_BLOCKED
    # A pair cannot satisfy both tests (dmin <= dmax and rlo <= rhi),
    # but skip is the stronger save so it takes precedence anyway.
    labels[skip] = PAIR_SKIP
    return labels
