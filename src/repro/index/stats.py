"""Access statistics for spatial indexes.

The paper's performance section reports execution times that are dominated
by index traversal; tracking node accesses and comparisons lets the
benchmarks report an implementation-independent cost alongside wall-clock
time.

:class:`IndexStats` is a counter-backed view (see
:mod:`repro.obs.stats`): each field reads/writes a live
:class:`repro.obs.metrics.Counter`, which an engine registry can attach
under ``index.*`` names so the same values flow into traced exports.
"""

from __future__ import annotations

from repro.obs.stats import CounterBackedStats

__all__ = ["IndexStats"]


class IndexStats(CounterBackedStats):
    """Mutable counters updated by index operations.

    Attributes
    ----------
    node_accesses:
        Internal + leaf node visits (R-tree) or full scans (scan index).
    point_comparisons:
        Individual point-in-box / distance evaluations.
    queries:
        Number of query operations issued.
    """

    _INT_FIELDS = ("node_accesses", "point_comparisons", "queries")

    def merge(self, other: "IndexStats") -> "IndexStats":
        """Return a new stats object with summed counters."""
        merged = IndexStats()
        merged.node_accesses = self.node_accesses + other.node_accesses
        merged.point_comparisons = self.point_comparisons + other.point_comparisons
        merged.queries = self.queries + other.queries
        return merged
