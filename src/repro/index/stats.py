"""Access statistics for spatial indexes.

The paper's performance section reports execution times that are dominated
by index traversal; tracking node accesses and comparisons lets the
benchmarks report an implementation-independent cost alongside wall-clock
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IndexStats:
    """Mutable counters updated by index operations.

    Attributes
    ----------
    node_accesses:
        Internal + leaf node visits (R-tree) or full scans (scan index).
    point_comparisons:
        Individual point-in-box / distance evaluations.
    queries:
        Number of query operations issued.
    """

    node_accesses: int = 0
    point_comparisons: int = 0
    queries: int = 0

    def reset(self) -> None:
        self.node_accesses = 0
        self.point_comparisons = 0
        self.queries = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "node_accesses": self.node_accesses,
            "point_comparisons": self.point_comparisons,
            "queries": self.queries,
        }

    def merge(self, other: "IndexStats") -> "IndexStats":
        """Return a new stats object with summed counters."""
        merged = IndexStats()
        merged.node_accesses = self.node_accesses + other.node_accesses
        merged.point_comparisons = self.point_comparisons + other.point_comparisons
        merged.queries = self.queries + other.queries
        return merged
