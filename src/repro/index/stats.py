"""Access statistics for spatial indexes.

The paper's performance section reports execution times that are dominated
by index traversal; tracking node accesses and comparisons lets the
benchmarks report an implementation-independent cost alongside wall-clock
time.

:class:`IndexStats` is a counter-backed view (see
:mod:`repro.obs.stats`): each field reads/writes a live
:class:`repro.obs.metrics.Counter`, which an engine registry can attach
under ``index.*`` names so the same values flow into traced exports.
"""

from __future__ import annotations

from repro.obs.stats import CounterBackedStats

__all__ = ["IndexStats"]


class IndexStats(CounterBackedStats):
    """Mutable counters updated by index operations.

    Attributes
    ----------
    node_accesses:
        Internal + leaf node visits (R-tree) or full scans (scan index).
    point_comparisons:
        Individual point-in-box / distance evaluations.
    queries:
        Number of query operations issued.
    incremental_inserts / incremental_removes / incremental_updates:
        Mutations absorbed by updating the existing structure in place
        (no rebuild).  One increment per ``insert``/``remove``/``update``
        call, however many rows it carried.
    rebuilds:
        Structure reconstructions from the full point matrix actually
        performed (the documented fallback of backends without an
        incremental path for that operation) — whether triggered
        eagerly by the mutation or lazily by the next query.
    deferred_rebuilds:
        Mutations absorbed by marking the structure dirty instead of
        rebuilding immediately (lazy-rebuild backends); the rebuild is
        coalesced into the next query, so a batch of ``k`` mutations
        costs ``k`` deferrals but a single ``rebuilds`` increment.
    """

    _INT_FIELDS = (
        "node_accesses",
        "point_comparisons",
        "queries",
        "incremental_inserts",
        "incremental_removes",
        "incremental_updates",
        "rebuilds",
        "deferred_rebuilds",
    )

    def merge(self, other: "IndexStats") -> "IndexStats":
        """Return a new stats object with summed counters."""
        merged = IndexStats()
        for name in self._INT_FIELDS:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged
