"""An R*-tree over points (Beckmann, Kriegel, Schneider & Seeger, 1990).

The paper indexes every dataset with an R-tree with 1536-byte pages; this
module implements the R*-tree variant it cites [11]: ChooseSubtree with
minimum overlap enlargement at the leaf level, forced reinsertion on the
first overflow per level, and the margin/overlap-driven topological split.

Only points are indexed (the paper stores tuples); leaf entries are row
positions into the point matrix, so the tree composes with the rest of the
library through :class:`repro.index.base.SpatialIndex`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.config import RTreeConfig
from repro.exceptions import IndexCorruptionError, InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex

__all__ = ["RTree", "RTreeNode"]


class RTreeNode:
    """A single R*-tree node.

    Leaf nodes hold point positions in :attr:`entries`; internal nodes hold
    child nodes in :attr:`children`.  The MBR is maintained incrementally as
    a pair of numpy arrays.
    """

    __slots__ = ("level", "entries", "children", "lo", "hi")

    def __init__(self, level: int, dim: int) -> None:
        self.level = level  # 0 for leaves.
        self.entries: list[int] = []
        self.children: list[RTreeNode] = []
        self.lo = np.full(dim, np.inf)
        self.hi = np.full(dim, -np.inf)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def count(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def mbr(self) -> Box:
        return Box(self.lo, self.hi)

    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        return float(np.sum(self.hi - self.lo))

    def extend_to_point(self, point: np.ndarray) -> None:
        np.minimum(self.lo, point, out=self.lo)
        np.maximum(self.hi, point, out=self.hi)

    def extend_to_node(self, node: "RTreeNode") -> None:
        np.minimum(self.lo, node.lo, out=self.lo)
        np.maximum(self.hi, node.hi, out=self.hi)

    def recompute_mbr(self, points: np.ndarray) -> None:
        if self.is_leaf:
            if self.entries:
                block = points[self.entries]
                self.lo = block.min(axis=0)
                self.hi = block.max(axis=0)
            else:
                self.lo = np.full(points.shape[1], np.inf)
                self.hi = np.full(points.shape[1], -np.inf)
        else:
            if self.children:
                self.lo = np.min(np.vstack([c.lo for c in self.children]), axis=0)
                self.hi = np.max(np.vstack([c.hi for c in self.children]), axis=0)
            else:
                self.lo = np.full(points.shape[1], np.inf)
                self.hi = np.full(points.shape[1], -np.inf)

    def intersects_box(self, box: Box) -> bool:
        return bool(np.all(self.lo <= box.hi) and np.all(box.lo <= self.hi))

    def min_sq_dist(self, point: np.ndarray) -> float:
        """Squared MINDIST from a point to the node MBR (best-first kNN)."""
        delta = np.maximum(0.0, np.maximum(self.lo - point, point - self.hi))
        return float(np.dot(delta, delta))


def _enlargement(lo: np.ndarray, hi: np.ndarray, point: np.ndarray) -> float:
    """Volume increase of the MBR [lo, hi] if extended to cover ``point``."""
    new_lo = np.minimum(lo, point)
    new_hi = np.maximum(hi, point)
    return float(np.prod(new_hi - new_lo) - np.prod(hi - lo))


def _overlap(node: RTreeNode, siblings: list[RTreeNode], lo: np.ndarray, hi: np.ndarray) -> float:
    """Total overlap volume between a candidate MBR and its siblings."""
    total = 0.0
    for sib in siblings:
        if sib is node:
            continue
        inter_lo = np.maximum(lo, sib.lo)
        inter_hi = np.minimum(hi, sib.hi)
        if np.all(inter_lo <= inter_hi):
            total += float(np.prod(inter_hi - inter_lo))
    return total


class RTree(SpatialIndex):
    """R*-tree point index.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix to index.
    config:
        Fanout parameters; defaults mirror the paper's 1536-byte pages.
    bulk:
        When true (default) the tree is built with Sort-Tile-Recursive
        bulk loading, then behaves identically to an insertion-built tree;
        when false, points are inserted one by one (exercises the full R*
        insertion machinery, used by tests).
    """

    def __init__(
        self,
        points: np.ndarray,
        config: RTreeConfig | None = None,
        bulk: bool = True,
    ) -> None:
        super().__init__(points)
        self.config = config or RTreeConfig()
        self._root = RTreeNode(0, self.dim)
        self._deleted: set[int] = set()
        if self.size:
            if bulk:
                from repro.index.bulkload import str_bulk_load

                self._root = str_bulk_load(self._points, self.config)
            else:
                for pos in range(self.size):
                    self._insert_position(pos)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        return self._root

    @property
    def height(self) -> int:
        return self._root.level + 1

    def node_count(self) -> int:
        return sum(1 for _ in self._iter_nodes())

    def _iter_nodes(self) -> Iterator[RTreeNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_indices(self, box: Box) -> np.ndarray:
        if box.dim != self.dim:
            raise ValueError(f"box dim {box.dim} != index dim {self.dim}")
        self.stats.queries += 1
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if not node.intersects_box(box):
                continue
            if node.is_leaf:
                if node.entries:
                    block = self._points[node.entries]
                    self.stats.point_comparisons += len(node.entries)
                    inside = np.all((block >= box.lo) & (block <= box.hi), axis=1)
                    out.extend(np.asarray(node.entries)[inside].tolist())
            else:
                stack.extend(node.children)
        return np.array(sorted(out), dtype=np.int64)

    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        p = as_point(point, dim=self.dim)
        if k <= 0 or self.size == 0:
            return np.empty(0, dtype=np.int64)
        self.stats.queries += 1
        k = min(k, self.size)
        counter = itertools.count()
        # Heap of (sq_dist, tiebreak, kind, payload); kind 0 = node, 1 = point.
        heap: list[tuple[float, int, int, object]] = [
            (self._root.min_sq_dist(p), next(counter), 0, self._root)
        ]
        result: list[int] = []
        while heap and len(result) < k:
            dist, _tie, kind, payload = heapq.heappop(heap)
            if kind == 1:
                result.append(payload)  # type: ignore[arg-type]
                continue
            node: RTreeNode = payload  # type: ignore[assignment]
            self.stats.node_accesses += 1
            if node.is_leaf:
                for pos in node.entries:
                    delta = self._points[pos] - p
                    self.stats.point_comparisons += 1
                    heapq.heappush(
                        heap, (float(np.dot(delta, delta)), pos, 1, pos)
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap, (child.min_sq_dist(p), next(counter), 0, child)
                    )
        return np.array(result, dtype=np.int64)

    # ------------------------------------------------------------------
    # Mutation surface (SpatialIndex contract)
    # ------------------------------------------------------------------
    # Appending rows is genuinely incremental: each new position runs the
    # full R* insertion (choose-subtree, forced reinsert, split), which is
    # exactly how a bulk=False tree is built, so query results stay
    # identical to a fresh build over the same matrix.  Compacting
    # removals and in-place updates would invalidate positions stored in
    # every leaf, so both take the documented rebuild fallback (STR bulk
    # load over the post-mutation matrix, counted in ``stats.rebuilds``).
    incremental_ops = frozenset({"insert"})

    def _check_mutable(self) -> None:
        if self._deleted:
            raise InvalidParameterError(
                "RTree has outstanding tombstone delete()s; the "
                "compacting insert/remove/update surface would resurrect "
                "them — rebuild the tree from the surviving points first"
            )

    def _apply_insert(self, start: int, points: np.ndarray) -> None:
        for pos in range(start, start + points.shape[0]):
            self._insert_position(pos)

    def _rebuild_structure(self) -> None:
        self._deleted = set()
        if self.size:
            from repro.index.bulkload import str_bulk_load

            self._root = str_bulk_load(self._points, self.config)
        else:
            self._root = RTreeNode(0, self.dim)

    # ------------------------------------------------------------------
    # Insertion (R* algorithm)
    # ------------------------------------------------------------------
    def _insert_position(self, pos: int) -> None:
        # Forced reinsert may be triggered once per level per insertion.
        self._overflowed_levels: set[int] = set()
        self._insert_entry(pos, level=0)

    def _insert_entry(self, entry: "int | RTreeNode", level: int) -> None:
        path = self._choose_path(entry, level)
        node = path[-1]
        if isinstance(entry, RTreeNode):
            node.children.append(entry)
            node.extend_to_node(entry)
        else:
            node.entries.append(entry)
            node.extend_to_point(self._points[entry])
        # Propagate MBR growth up the path.
        for ancestor in path[:-1]:
            if isinstance(entry, RTreeNode):
                ancestor.extend_to_node(entry)
            else:
                ancestor.extend_to_point(self._points[entry])
        self._handle_overflow(path)

    def _choose_path(self, entry: "int | RTreeNode", level: int) -> list[RTreeNode]:
        """Descend from the root to the node at ``level`` that should host
        the entry, using the R* ChooseSubtree criteria."""
        path = [self._root]
        node = self._root
        if isinstance(entry, RTreeNode):
            point_lo, point_hi = entry.lo, entry.hi
            rep = (entry.lo + entry.hi) / 2.0
        else:
            rep = self._points[entry]
            point_lo = point_hi = rep
        while node.level > level:
            children = node.children
            if node.level == level + 1 and level == 0:
                # Children are leaves: minimise overlap enlargement.
                best = self._least_overlap_child(children, rep)
            else:
                best = self._least_enlargement_child(children, rep)
            np.minimum(best.lo, point_lo, out=best.lo)
            np.maximum(best.hi, point_hi, out=best.hi)
            path.append(best)
            node = best
        return path

    @staticmethod
    def _least_enlargement_child(children: list[RTreeNode], point: np.ndarray) -> RTreeNode:
        best = None
        best_key = None
        for child in children:
            key = (_enlargement(child.lo, child.hi, point), child.volume())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    @staticmethod
    def _least_overlap_child(children: list[RTreeNode], point: np.ndarray) -> RTreeNode:
        best = None
        best_key = None
        for child in children:
            new_lo = np.minimum(child.lo, point)
            new_hi = np.maximum(child.hi, point)
            overlap_delta = _overlap(child, children, new_lo, new_hi) - _overlap(
                child, children, child.lo, child.hi
            )
            key = (
                overlap_delta,
                _enlargement(child.lo, child.hi, point),
                child.volume(),
            )
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Overflow: forced reinsert then split
    # ------------------------------------------------------------------
    def _handle_overflow(self, path: list[RTreeNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if node.count <= self.config.max_entries:
                continue
            is_root = depth == 0
            if (
                not is_root
                and node.level not in self._overflowed_levels
                and self.config.reinsert_fraction > 0
            ):
                self._overflowed_levels.add(node.level)
                self._reinsert(node, path[:depth + 1])
                # Reinsertion restarts insertion; stop processing this path.
                return
            self._split(node, path[depth - 1] if depth else None)

    def _reinsert(self, node: RTreeNode, path: list[RTreeNode]) -> None:
        """Remove the entries farthest from the node centre and reinsert
        them from the top (R* forced reinsertion)."""
        count = max(1, int(node.count * self.config.reinsert_fraction))
        center = (node.lo + node.hi) / 2.0
        if node.is_leaf:
            coords = self._points[node.entries]
            dists = np.sum((coords - center) ** 2, axis=1)
            order = np.argsort(dists)
            keep = [node.entries[i] for i in order[: node.count - count]]
            spill = [node.entries[i] for i in order[node.count - count:]]
            node.entries = keep
        else:
            centers = np.vstack([(c.lo + c.hi) / 2.0 for c in node.children])
            dists = np.sum((centers - center) ** 2, axis=1)
            order = np.argsort(dists)
            keep = [node.children[i] for i in order[: node.count - count]]
            spill = [node.children[i] for i in order[node.count - count:]]
            node.children = keep
        node.recompute_mbr(self._points)
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr(self._points)
        for item in spill:
            self._insert_entry(item, level=node.level)

    def _split(self, node: RTreeNode, parent: RTreeNode | None) -> None:
        """R* topological split: axis by minimum margin sum, distribution by
        minimum overlap, then minimum combined volume."""
        if node.is_leaf:
            items = list(node.entries)
            rects = [(self._points[i], self._points[i]) for i in items]
        else:
            items = list(node.children)
            rects = [(c.lo, c.hi) for c in items]
        m = self.config.min_entries
        total = len(items)
        best_axis, best_split, best_key = None, None, None
        for axis in range(self.dim):
            for sort_key in (0, 1):  # Sort by lower, then by upper edge.
                order = sorted(range(total), key=lambda i: (rects[i][sort_key][axis], rects[i][1 - sort_key][axis]))
                margin_sum = 0.0
                candidates = []
                for split_at in range(m, total - m + 1):
                    left = order[:split_at]
                    right = order[split_at:]
                    l_lo = np.min(np.vstack([rects[i][0] for i in left]), axis=0)
                    l_hi = np.max(np.vstack([rects[i][1] for i in left]), axis=0)
                    r_lo = np.min(np.vstack([rects[i][0] for i in right]), axis=0)
                    r_hi = np.max(np.vstack([rects[i][1] for i in right]), axis=0)
                    margin_sum += float(np.sum(l_hi - l_lo) + np.sum(r_hi - r_lo))
                    inter_lo = np.maximum(l_lo, r_lo)
                    inter_hi = np.minimum(l_hi, r_hi)
                    overlap = (
                        float(np.prod(inter_hi - inter_lo))
                        if np.all(inter_lo <= inter_hi)
                        else 0.0
                    )
                    volume = float(np.prod(l_hi - l_lo) + np.prod(r_hi - r_lo))
                    candidates.append((overlap, volume, left, right))
                for overlap, volume, left, right in candidates:
                    key = (margin_sum, overlap, volume)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_axis = axis
                        best_split = (left, right)
        assert best_split is not None
        left_ids, right_ids = best_split
        sibling = RTreeNode(node.level, self.dim)
        if node.is_leaf:
            node.entries = [items[i] for i in left_ids]
            sibling.entries = [items[i] for i in right_ids]
        else:
            node.children = [items[i] for i in left_ids]
            sibling.children = [items[i] for i in right_ids]
        node.recompute_mbr(self._points)
        sibling.recompute_mbr(self._points)
        if parent is None:
            new_root = RTreeNode(node.level + 1, self.dim)
            new_root.children = [node, sibling]
            new_root.recompute_mbr(self._points)
            self._root = new_root
        else:
            parent.children.append(sibling)
            parent.recompute_mbr(self._points)

    # ------------------------------------------------------------------
    # Deletion (with tree condensation)
    # ------------------------------------------------------------------
    def delete(self, position: int) -> None:
        """Remove one indexed point from the tree.

        The point matrix is untouched (positions stay stable); the entry
        simply stops being returned by queries.  Underfull nodes along
        the deletion path are dissolved and their entries reinserted —
        the classic condense-tree step — so the fanout invariants keep
        holding and :meth:`check_integrity` stays valid.
        """
        position = int(position)
        if not 0 <= position < self.size:
            raise KeyError(f"position {position} out of range")
        if position in self._deleted:
            raise KeyError(f"position {position} already deleted")
        path = self._find_leaf(self._root, position, [])
        if path is None:
            raise IndexCorruptionError(
                f"position {position} not found in the tree"
            )
        leaf = path[-1]
        leaf.entries.remove(position)
        self._deleted.add(position)
        self._condense(path)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]

    @property
    def deleted_count(self) -> int:
        return len(self._deleted)

    def _find_leaf(
        self, node: RTreeNode, position: int, path: list[RTreeNode]
    ) -> list[RTreeNode] | None:
        path = path + [node]
        point = self._points[position]
        if node.is_leaf:
            return path if position in node.entries else None
        for child in node.children:
            if np.all(point >= child.lo) and np.all(point <= child.hi):
                found = self._find_leaf(child, position, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[RTreeNode]) -> None:
        """Dissolve underfull nodes bottom-up and reinsert their entries."""
        orphans: list[object] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if node.count < self.config.min_entries:
                parent.children.remove(node)
                orphans.extend(node.entries if node.is_leaf else node.children)
            node.recompute_mbr(self._points)
        for node in reversed(path):
            node.recompute_mbr(self._points)
        for entry in orphans:
            self._overflowed_levels = set()
            if isinstance(entry, RTreeNode):
                # Subtrees reinsert at their own level; if the tree shrank
                # below that level, fall back to reinserting their points.
                if entry.level + 1 >= self._root.level:
                    for pos in self._collect_positions(entry):
                        self._overflowed_levels = set()
                        self._insert_entry(pos, level=0)
                else:
                    self._insert_entry(entry, level=entry.level + 1)
            else:
                self._insert_entry(entry, level=0)

    def _collect_positions(self, node: RTreeNode) -> list[int]:
        if node.is_leaf:
            return list(node.entries)
        out: list[int] = []
        for child in node.children:
            out.extend(self._collect_positions(child))
        return out

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Validate structural invariants; raises IndexCorruptionError.

        Checks: every point indexed exactly once; leaf levels uniform; child
        MBRs contained in parents; fanout within bounds (root exempt).
        """
        seen: list[int] = []
        self._check_node(self._root, is_root=True, seen=seen)
        expected = sorted(set(range(self.size)) - self._deleted)
        if sorted(seen) != expected:
            raise IndexCorruptionError(
                f"index covers {len(seen)} entries, expected {len(expected)} live positions"
            )

    def _check_node(self, node: RTreeNode, is_root: bool, seen: list[int]) -> None:
        empty_allowed = is_root and len(self._deleted) == self.size
        if node.count == 0 and not empty_allowed:
            raise IndexCorruptionError("empty non-root node")
        if not is_root and node.count < self.config.min_entries and node.count > 0:
            # STR bulk loading can produce one underfull node per level; only
            # flag clearly broken nodes (fewer than 1 entry handled above).
            pass
        if node.count > self.config.max_entries:
            raise IndexCorruptionError(
                f"node fanout {node.count} exceeds max {self.config.max_entries}"
            )
        if node.is_leaf:
            for pos in node.entries:
                point = self._points[pos]
                if np.any(point < node.lo) or np.any(point > node.hi):
                    raise IndexCorruptionError(f"point {pos} outside leaf MBR")
                seen.append(pos)
        else:
            for child in node.children:
                if child.level != node.level - 1:
                    raise IndexCorruptionError("inconsistent node levels")
                if np.any(child.lo < node.lo) or np.any(child.hi > node.hi):
                    raise IndexCorruptionError("child MBR escapes parent MBR")
                self._check_node(child, is_root=False, seen=seen)
