"""Spatial access methods.

Two interchangeable implementations of the :class:`SpatialIndex` interface:

* :class:`ScanIndex` — vectorised brute force, the correctness oracle;
* :class:`RTree` — an R*-tree (Beckmann et al.) with STR bulk loading
  and condense-tree deletion, the access method the paper uses (page
  size 1536 bytes);
* :class:`GridIndex` — a uniform grid;
* :class:`KDTree` — a median-split k-d tree.

The grid and k-d tree give the ablation benchmarks non-trivial
alternatives to compare the R*-tree against.

All reverse-skyline and why-not machinery is written against the interface,
so every experiment can run on either backend.
"""

from repro.index.base import SpatialIndex
from repro.index.bulkload import str_bulk_load
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex
from repro.index.stats import IndexStats

__all__ = [
    "SpatialIndex",
    "ScanIndex",
    "RTree",
    "GridIndex",
    "KDTree",
    "IndexStats",
    "str_bulk_load",
    "make_index",
]

_BACKENDS = {
    "rtree": RTree,
    "scan": ScanIndex,
    "grid": GridIndex,
    "kdtree": KDTree,
}


def make_index(backend: str, points) -> SpatialIndex:
    """Construct the named backend over ``points``.

    Raises :class:`~repro.exceptions.InvalidParameterError` for unknown
    backend names (the error the engine has always raised).
    """
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        from repro.exceptions import InvalidParameterError

        raise InvalidParameterError(
            f"unknown backend {backend!r}; use 'rtree', 'scan', 'grid' "
            "or 'kdtree'"
        ) from None
    return cls(points)
