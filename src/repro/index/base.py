"""The :class:`SpatialIndex` interface.

Every skyline / reverse-skyline / why-not routine in this library is written
against this small abstract surface, so the brute-force oracle and the
R*-tree are interchangeable in both tests and experiments.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.index.stats import IndexStats

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """Spatial access to an ``(n, d)`` point set.

    Indexes return *positions* (row indices into :attr:`points`), which the
    callers map to dataset ids; this keeps numpy vectorisation cheap.

    The query surface is read-only, but every backend also supports the
    mutation trio :meth:`insert` / :meth:`remove` / :meth:`update`.  The
    base class maintains :attr:`points` and delegates structure upkeep to
    the ``_apply_*`` hooks, whose default is a counted full rebuild
    (``stats.rebuilds``); backends that can absorb an operation in place
    override the hook and advertise it in :attr:`incremental_ops`
    (``stats.incremental_*`` counts those).  Either way the post-mutation
    index answers queries exactly as a freshly built one over the same
    matrix.

    :meth:`remove` compacts positions — surviving rows shift down — and
    returns the same old-to-new mapping contract as
    :class:`repro.store.VersionedStore.delete` (``-1`` for removed rows).
    """

    #: Operation names ("insert"/"remove"/"update") this backend absorbs
    #: without a rebuild.  Purely descriptive; the authoritative account
    #: is the stats counters.
    incremental_ops: frozenset[str] = frozenset()

    #: Operation names this backend absorbs by marking the structure
    #: dirty and rebuilding lazily on the next query
    #: (``stats.deferred_rebuilds``); a batch of mutations coalesces
    #: into one rebuild.  Disjoint from :attr:`incremental_ops`.
    deferred_ops: frozenset[str] = frozenset()

    def __init__(self, points: np.ndarray) -> None:
        self._points = np.ascontiguousarray(points, dtype=np.float64)
        if self._points.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {self._points.shape}")
        self.stats = IndexStats()

    # ------------------------------------------------------------------
    # Common accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The indexed ``(n, d)`` point matrix (do not mutate)."""
        return self._points

    @property
    def size(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def get_point(self, position: int) -> np.ndarray:
        return self._points[position]

    # ------------------------------------------------------------------
    # Abstract query surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def range_indices(self, box: Box) -> np.ndarray:
        """Positions of all points inside the *closed* box.

        Open-interior filtering (the STRICT window test) is applied by the
        caller on the returned coordinates; the closed result is a superset
        of the open one, so no index-side semantics knob is needed.
        """

    @abc.abstractmethod
    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        """Positions of the ``k`` nearest points by L2 distance, nearest
        first.  Ties are broken by position for determinism."""

    # ------------------------------------------------------------------
    # Mutation surface
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> np.ndarray:
        """Append rows to the index; returns their new positions.

        Accepts one point or an ``(k, d)`` block.  Counted under
        ``stats.incremental_inserts`` when the backend absorbed it in
        place, ``stats.rebuilds`` otherwise.
        """
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.shape[1] != self.dim:
            raise ValueError(
                f"insert expects (k, {self.dim}) points, got shape {pts.shape}"
            )
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        self._check_mutable()
        start = self.size
        before = self._structure_work()
        self._points = np.ascontiguousarray(np.vstack([self._points, pts]))
        self._apply_insert(start, pts)
        if self._structure_work() == before:
            self.stats.incremental_inserts += 1
        return np.arange(start, start + pts.shape[0], dtype=np.int64)

    def remove(self, positions: Sequence[int]) -> np.ndarray:
        """Remove rows and compact; returns the old-to-new mapping
        (``-1`` for removed rows), matching the store delete contract."""
        drop = np.unique(np.asarray(list(positions), dtype=np.int64))
        if drop.size and (drop[0] < 0 or drop[-1] >= self.size):
            bad = int(drop[0] if drop[0] < 0 else drop[-1])
            raise ValueError(f"remove position {bad} out of range")
        if drop.size == 0:
            return np.arange(self.size, dtype=np.int64)
        self._check_mutable()
        old_points = self._points
        mask = np.ones(self.size, dtype=bool)
        mask[drop] = False
        keep = np.flatnonzero(mask)
        mapping = np.full(old_points.shape[0], -1, dtype=np.int64)
        mapping[keep] = np.arange(keep.size, dtype=np.int64)
        before = self._structure_work()
        self._points = np.ascontiguousarray(old_points[keep])
        self._apply_remove(drop, mapping, old_points)
        if self._structure_work() == before:
            self.stats.incremental_removes += 1
        return mapping

    def update(self, positions: Sequence[int], points: np.ndarray) -> None:
        """Replace the coordinates of existing rows (positions stable)."""
        target = np.asarray(list(positions), dtype=np.int64)
        if np.unique(target).size != target.size:
            raise ValueError("update positions must be distinct")
        if target.size and (target.min() < 0 or target.max() >= self.size):
            bad = int(target.min() if target.min() < 0 else target.max())
            raise ValueError(f"update position {bad} out of range")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.shape != (target.size, self.dim):
            raise ValueError(
                f"update expects ({target.size}, {self.dim}) points, "
                f"got shape {pts.shape}"
            )
        if target.size == 0:
            return
        order = np.argsort(target)
        target = target[order]
        pts = pts[order]
        self._check_mutable()
        old_rows = self._points[target].copy()
        matrix = self._points.copy()
        matrix[target] = pts
        before = self._structure_work()
        self._points = np.ascontiguousarray(matrix)
        self._apply_update(target, old_rows, pts)
        if self._structure_work() == before:
            self.stats.incremental_updates += 1

    # Structure-upkeep hooks: the base behaviour is a counted rebuild.
    # ``self._points`` is already the post-mutation matrix when a hook
    # runs; ``old_points`` / ``mapping`` describe the previous state.
    def _apply_insert(self, start: int, points: np.ndarray) -> None:
        self._rebuild()

    def _apply_remove(
        self, dropped: np.ndarray, mapping: np.ndarray, old_points: np.ndarray
    ) -> None:
        self._rebuild()

    def _apply_update(
        self,
        positions: np.ndarray,
        old_points: np.ndarray,
        new_points: np.ndarray,
    ) -> None:
        self._rebuild()

    def _check_mutable(self) -> None:
        """Pre-mutation validity hook (backends veto unsupported states)."""

    def _structure_work(self) -> int:
        """Combined rebuild-side counter: a mutation is only counted as
        incremental when it neither rebuilt nor deferred a rebuild."""
        return self.stats.rebuilds + self.stats.deferred_rebuilds

    def _rebuild(self) -> None:
        self.stats.rebuilds += 1
        self._rebuild_structure()

    def _defer_rebuild(self) -> None:
        """Counted lazy fallback: mark the structure stale instead of
        rebuilding now; the backend rebuilds on its next query."""
        self.stats.deferred_rebuilds += 1

    def _rebuild_structure(self) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement rebuild-backed "
            "mutation"
        )

    # ------------------------------------------------------------------
    # Convenience built on the abstract surface
    # ------------------------------------------------------------------
    def count_in_range(self, box: Box) -> int:
        return int(self.range_indices(box).size)

    def range_points(self, box: Box) -> np.ndarray:
        return self._points[self.range_indices(box)]

    def reset_stats(self) -> None:
        self.stats.reset()
