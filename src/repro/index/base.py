"""The :class:`SpatialIndex` interface.

Every skyline / reverse-skyline / why-not routine in this library is written
against this small abstract surface, so the brute-force oracle and the
R*-tree are interchangeable in both tests and experiments.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.index.stats import IndexStats

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """Read-only spatial access to an ``(n, d)`` point set.

    Indexes return *positions* (row indices into :attr:`points`), which the
    callers map to dataset ids; this keeps numpy vectorisation cheap.
    """

    def __init__(self, points: np.ndarray) -> None:
        self._points = np.ascontiguousarray(points, dtype=np.float64)
        if self._points.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {self._points.shape}")
        self.stats = IndexStats()

    # ------------------------------------------------------------------
    # Common accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The indexed ``(n, d)`` point matrix (do not mutate)."""
        return self._points

    @property
    def size(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def get_point(self, position: int) -> np.ndarray:
        return self._points[position]

    # ------------------------------------------------------------------
    # Abstract query surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def range_indices(self, box: Box) -> np.ndarray:
        """Positions of all points inside the *closed* box.

        Open-interior filtering (the STRICT window test) is applied by the
        caller on the returned coordinates; the closed result is a superset
        of the open one, so no index-side semantics knob is needed.
        """

    @abc.abstractmethod
    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        """Positions of the ``k`` nearest points by L2 distance, nearest
        first.  Ties are broken by position for determinism."""

    # ------------------------------------------------------------------
    # Convenience built on the abstract surface
    # ------------------------------------------------------------------
    def count_in_range(self, box: Box) -> int:
        return int(self.range_indices(box).size)

    def range_points(self, box: Box) -> np.ndarray:
        return self._points[self.range_indices(box)]

    def reset_stats(self) -> None:
        self.stats.reset()
