"""A uniform grid index.

A third :class:`SpatialIndex` backend: the data bounding box is cut into
``cells_per_dim`` slabs per dimension and each cell holds the positions
of its points.  Window queries touch only overlapping cells; kNN expands
rings of cells around the target until the answer is provably complete.

Grids shine on the uniformly distributed synthetic workloads and give
the benchmark suite a second non-trivial access method to compare the
R*-tree against.

The grid is fully incremental (see :attr:`GridIndex.incremental_ops`):
inserts land in their cell bucket, removals remap every bucket through
the compaction mapping, and updates move one position between buckets.
The cell geometry is frozen at build time, so points inserted *outside*
the original bounding box go to a small linear **overflow** set that both
query paths scan exactly — correctness never depends on the mutated data
staying inside the original universe.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    """Uniform grid over the data's bounding box.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix to index.
    cells_per_dim:
        Grid resolution; ``None`` picks ``ceil(n ** (1/d))`` capped at 64,
        which targets O(1) points per cell on uniform data.
    """

    incremental_ops = frozenset({"insert", "remove", "update"})

    def __init__(self, points: np.ndarray, cells_per_dim: int | None = None) -> None:
        super().__init__(points)
        if cells_per_dim is not None and cells_per_dim < 1:
            raise ValueError("cells_per_dim must be positive")
        self._requested_cells = cells_per_dim
        self._build_structure()

    def _build_structure(self) -> None:
        """(Re)derive the cell geometry and buckets from ``_points``."""
        self._overflow = np.empty(0, dtype=np.int64)
        if self.size == 0:
            self._has_grid = False
            self._cells_per_dim = 1
            self._lo = np.zeros(max(self.dim, 1))
            self._width = np.ones(max(self.dim, 1))
            self._cells: dict[tuple[int, ...], np.ndarray] = {}
            return
        self._has_grid = True
        cells_per_dim = self._requested_cells
        if cells_per_dim is None:
            cells_per_dim = int(min(64, max(1, round(self.size ** (1.0 / self.dim)))))
        self._cells_per_dim = cells_per_dim
        self._lo = self._points.min(axis=0)
        hi = self._points.max(axis=0)
        span = np.where(hi > self._lo, hi - self._lo, 1.0)
        self._width = span / cells_per_dim

        coords = self._cell_coords(self._points)
        order = np.lexsort(coords.T[::-1])
        sorted_coords = coords[order]
        boundaries = np.flatnonzero(
            np.any(np.diff(sorted_coords, axis=0) != 0, axis=1)
        )
        starts = np.concatenate([[0], boundaries + 1])
        ends = np.concatenate([boundaries + 1, [self.size]])
        self._cells = {
            tuple(sorted_coords[start]): np.sort(order[start:end])
            for start, end in zip(starts, ends)
        }

    def _rebuild_structure(self) -> None:
        self._build_structure()

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        rel = (points - self._lo) / self._width
        return np.clip(
            np.floor(rel).astype(np.int64), 0, self._cells_per_dim - 1
        )

    def _cell_box(self, coords: Sequence[int]) -> Box:
        lo = self._lo + np.asarray(coords) * self._width
        return Box(lo, lo + self._width)

    def _covers(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside the frozen grid box (where the
        clipped cell arithmetic is exact)."""
        grid_hi = self._lo + self._width * self._cells_per_dim
        return bool(np.all(point >= self._lo) and np.all(point <= grid_hi))

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    @property
    def overflow_count(self) -> int:
        """Points living outside the frozen grid box (linear-scanned)."""
        return int(self._overflow.size)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def _bucket_add(self, position: int, point: np.ndarray) -> None:
        if not self._covers(point):
            self._overflow = np.sort(np.append(self._overflow, position))
            return
        coords = tuple(self._cell_coords(point.reshape(1, -1))[0])
        bucket = self._cells.get(coords)
        if bucket is None:
            self._cells[coords] = np.array([position], dtype=np.int64)
        else:
            self._cells[coords] = np.sort(np.append(bucket, position))

    def _bucket_drop(self, position: int, point: np.ndarray) -> None:
        if not self._covers(point):
            self._overflow = self._overflow[self._overflow != position]
            return
        coords = tuple(self._cell_coords(point.reshape(1, -1))[0])
        bucket = self._cells.get(coords)
        if bucket is None:
            return
        bucket = bucket[bucket != position]
        if bucket.size:
            self._cells[coords] = bucket
        else:
            del self._cells[coords]

    def _apply_insert(self, start: int, points: np.ndarray) -> None:
        if not self._has_grid:
            # First rows of an empty-built grid: derive real geometry.
            self._rebuild()
            return
        for offset in range(points.shape[0]):
            self._bucket_add(start + offset, points[offset])

    def _apply_remove(
        self, dropped: np.ndarray, mapping: np.ndarray, old_points: np.ndarray
    ) -> None:
        new_cells: dict[tuple[int, ...], np.ndarray] = {}
        for coords, bucket in self._cells.items():
            remapped = mapping[bucket]
            remapped = remapped[remapped >= 0]
            if remapped.size:
                new_cells[coords] = remapped
        self._cells = new_cells
        overflow = mapping[self._overflow]
        self._overflow = overflow[overflow >= 0]

    def _apply_update(
        self,
        positions: np.ndarray,
        old_points: np.ndarray,
        new_points: np.ndarray,
    ) -> None:
        for pos, old, new in zip(positions, old_points, new_points):
            self._bucket_drop(int(pos), old)
            self._bucket_add(int(pos), new)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_indices(self, box: Box) -> np.ndarray:
        if box.dim != self.dim:
            raise ValueError(f"box dim {box.dim} != index dim {self.dim}")
        self.stats.queries += 1
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        lo_cell = self._cell_coords(box.lo.reshape(1, -1))[0]
        hi_cell = self._cell_coords(box.hi.reshape(1, -1))[0]
        hits: list[np.ndarray] = []
        for coords in itertools.product(
            *(range(int(a), int(b) + 1) for a, b in zip(lo_cell, hi_cell))
        ):
            bucket = self._cells.get(coords)
            if bucket is None:
                continue
            self.stats.node_accesses += 1
            block = self._points[bucket]
            self.stats.point_comparisons += bucket.size
            inside = np.all((block >= box.lo) & (block <= box.hi), axis=1)
            if inside.any():
                hits.append(bucket[inside])
        if self._overflow.size:
            # Out-of-grid points: one exact linear pass, like a tiny scan.
            self.stats.node_accesses += 1
            block = self._points[self._overflow]
            self.stats.point_comparisons += self._overflow.size
            inside = np.all((block >= box.lo) & (block <= box.hi), axis=1)
            if inside.any():
                hits.append(self._overflow[inside])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        p = as_point(point, dim=self.dim)
        if k <= 0 or self.size == 0:
            return np.empty(0, dtype=np.int64)
        self.stats.queries += 1
        k = min(k, self.size)
        # Best-first over cells by MINDIST, then over points.
        counter = itertools.count()
        heap: list[tuple[float, int, int, object]] = []
        for coords, bucket in self._cells.items():
            box = self._cell_box(coords)
            delta = np.maximum(
                0.0, np.maximum(box.lo - p, p - box.hi)
            )
            heapq.heappush(
                heap,
                (float(np.dot(delta, delta)), next(counter), 0, (coords, bucket)),
            )
        if self._overflow.size:
            # Overflow points enter as exact candidates up front — their
            # coordinates lie outside the cell geometry, so MINDIST
            # pruning must never stand between them and the answer.
            self.stats.node_accesses += 1
            block = self._points[self._overflow]
            self.stats.point_comparisons += self._overflow.size
            dists = np.sum((block - p) ** 2, axis=1)
            for pos, dist in zip(self._overflow, dists):
                heapq.heappush(heap, (float(dist), int(pos), 1, int(pos)))
        result: list[int] = []
        while heap and len(result) < k:
            _dist, _tie, kind, payload = heapq.heappop(heap)
            if kind == 1:
                result.append(payload)  # type: ignore[arg-type]
                continue
            _coords, bucket = payload  # type: ignore[misc]
            self.stats.node_accesses += 1
            block = self._points[bucket]
            self.stats.point_comparisons += bucket.size
            dists = np.sum((block - p) ** 2, axis=1)
            for pos, dist in zip(bucket, dists):
                heapq.heappush(heap, (float(dist), int(pos), 1, int(pos)))
        return np.array(result, dtype=np.int64)
