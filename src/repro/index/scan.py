"""Brute-force vectorised index.

This is the correctness oracle for the R*-tree and, thanks to numpy, also a
very competitive backend for the bulk parameter sweeps of the experiment
harness (a single boolean reduction per query versus Python-level tree
traversal).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex

__all__ = ["ScanIndex"]


class ScanIndex(SpatialIndex):
    """Linear-scan implementation of :class:`SpatialIndex`.

    The point matrix *is* the structure, so every mutation is trivially
    incremental: the base class has already rewritten ``_points`` by the
    time the hooks run, and there is nothing else to maintain.
    """

    incremental_ops = frozenset({"insert", "remove", "update"})

    def _apply_insert(self, start: int, points: np.ndarray) -> None:
        pass

    def _apply_remove(
        self, dropped: np.ndarray, mapping: np.ndarray, old_points: np.ndarray
    ) -> None:
        pass

    def _apply_update(
        self,
        positions: np.ndarray,
        old_points: np.ndarray,
        new_points: np.ndarray,
    ) -> None:
        pass

    def _rebuild_structure(self) -> None:
        pass

    def range_indices(self, box: Box) -> np.ndarray:
        if box.dim != self.dim:
            raise ValueError(f"box dim {box.dim} != index dim {self.dim}")
        self.stats.queries += 1
        self.stats.node_accesses += 1  # One "node": the whole array.
        self.stats.point_comparisons += self.size
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        inside = np.all(
            (self._points >= box.lo) & (self._points <= box.hi), axis=1
        )
        return np.flatnonzero(inside)

    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        p = as_point(point, dim=self.dim)
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        self.stats.queries += 1
        self.stats.node_accesses += 1
        self.stats.point_comparisons += self.size
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        dists = np.sqrt(np.sum((self._points - p) ** 2, axis=1))
        k = min(k, self.size)
        # Stable ordering: distance first, then position, for determinism.
        order = np.lexsort((np.arange(self.size), dists))
        return order[:k].astype(np.int64)
