"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

Building a tree over 200K points by repeated insertion is slow in pure
Python; STR (Leutenegger et al.) packs points into full leaves with one sort
pass per dimension and then packs the leaves level by level.  The resulting
tree satisfies every invariant checked by ``RTree.check_integrity``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import RTreeConfig
from repro.index.rtree import RTreeNode

__all__ = ["str_bulk_load"]


def _tile_positions(points: np.ndarray, positions: np.ndarray, capacity: int) -> list[np.ndarray]:
    """Recursively tile ``positions`` into groups of at most ``capacity``
    points, sorting by one dimension per recursion level (STR)."""
    dim = points.shape[1]

    def recurse(pos: np.ndarray, axis: int) -> list[np.ndarray]:
        n = pos.size
        if n <= capacity:
            return [pos]
        leaves_needed = math.ceil(n / capacity)
        if axis >= dim - 1:
            order = pos[np.argsort(points[pos, axis], kind="stable")]
            return [
                order[i * capacity:(i + 1) * capacity]
                for i in range(leaves_needed)
            ]
        # Number of vertical slabs: S = ceil(sqrt-ish of leaf count across
        # the remaining dimensions).
        slabs = math.ceil(leaves_needed ** (1.0 / (dim - axis)))
        slab_size = math.ceil(n / slabs)
        order = pos[np.argsort(points[pos, axis], kind="stable")]
        groups: list[np.ndarray] = []
        for i in range(slabs):
            chunk = order[i * slab_size:(i + 1) * slab_size]
            if chunk.size:
                groups.extend(recurse(chunk, axis + 1))
        return groups

    return recurse(positions, 0)


def str_bulk_load(points: np.ndarray, config: RTreeConfig) -> RTreeNode:
    """Build and return the root node of an STR-packed tree over ``points``."""
    n, dim = points.shape
    if n == 0:
        return RTreeNode(0, dim)
    capacity = config.max_entries
    all_positions = np.arange(n, dtype=np.int64)

    groups = _tile_positions(points, all_positions, capacity)
    leaves: list[RTreeNode] = []
    for group in groups:
        leaf = RTreeNode(0, dim)
        leaf.entries = [int(i) for i in group]
        leaf.recompute_mbr(points)
        leaves.append(leaf)

    level = 0
    nodes = leaves
    while len(nodes) > 1:
        level += 1
        centers = np.vstack([(node.lo + node.hi) / 2.0 for node in nodes])
        parent_groups = _tile_positions(
            centers, np.arange(len(nodes), dtype=np.int64), capacity
        )
        parents: list[RTreeNode] = []
        for group in parent_groups:
            parent = RTreeNode(level, dim)
            parent.children = [nodes[int(i)] for i in group]
            parent.recompute_mbr(points)
            parents.append(parent)
        nodes = parents
    return nodes[0]
