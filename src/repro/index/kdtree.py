"""A k-d tree point index.

Fourth :class:`SpatialIndex` backend: a median-split binary tree over the
points, built once (bulk) with cycling split dimensions.  Range queries
descend only subtrees whose half-space intersects the box; kNN is the
classic branch-and-bound descent with hypersphere pruning.

Compared to the R*-tree the k-d tree has cheaper construction and lower
per-node overhead but no ability to bound clusters tightly (its regions
are half-space cells, not MBRs), which the ablation benchmarks make
visible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex

__all__ = ["KDTree"]

_LEAF_SIZE = 16


class _Node:
    __slots__ = ("axis", "split", "left", "right", "positions", "lo", "hi")

    def __init__(self) -> None:
        self.axis = -1
        self.split = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.positions: np.ndarray | None = None  # Leaf payload.
        self.lo: np.ndarray | None = None  # Tight bounding box (all nodes).
        self.hi: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.positions is not None


class KDTree(SpatialIndex):
    """Median-split k-d tree with tight per-node bounding boxes.

    Mutation support is the documented **lazy rebuild fallback**: the
    median splits and tight boxes depend on the global point
    distribution, so mutations cannot be absorbed in place — but instead
    of reconstructing once per ``insert``/``remove``/``update``, each
    mutation only marks the tree dirty (``stats.deferred_rebuilds``) and
    the next query rebuilds from the current matrix
    (``stats.rebuilds``).  A batch program of ``k`` mutations therefore
    coalesces into a single O(n log n) construction.  Churn-heavy
    workloads interleaving queries should still prefer an incremental
    backend (scan or grid).
    """

    incremental_ops = frozenset()
    deferred_ops = frozenset({"insert", "remove", "update"})

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        super().__init__(points)
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self._leaf_size = leaf_size
        self._root: _Node | None = None
        self._dirty = False
        if self.size:
            self._root = self._build(np.arange(self.size, dtype=np.int64), 0)

    def _rebuild_structure(self) -> None:
        self._root = (
            self._build(np.arange(self.size, dtype=np.int64), 0)
            if self.size
            else None
        )
        self._dirty = False

    # Lazy-rebuild hooks: every mutation defers; queries rebuild once.
    def _apply_insert(self, start: int, points: np.ndarray) -> None:
        self._dirty = True
        self._defer_rebuild()

    def _apply_remove(self, dropped, mapping, old_points) -> None:
        self._dirty = True
        self._defer_rebuild()

    def _apply_update(self, positions, old_points, new_points) -> None:
        self._dirty = True
        self._defer_rebuild()

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild()

    def _build(self, positions: np.ndarray, depth: int) -> _Node:
        node = _Node()
        block = self._points[positions]
        node.lo = block.min(axis=0)
        node.hi = block.max(axis=0)
        if positions.size <= self._leaf_size:
            node.positions = np.sort(positions)
            return node
        axis = depth % self.dim
        values = block[:, axis]
        order = np.argsort(values, kind="stable")
        mid = positions.size // 2
        # Median split; all-equal slabs would recurse forever, so fall
        # back to a leaf when the split cannot separate.
        if values[order[0]] == values[order[-1]]:
            if self.dim > 1:
                # Try the other axes before giving up.
                for alt in range(1, self.dim):
                    alt_axis = (axis + alt) % self.dim
                    alt_values = block[:, alt_axis]
                    if alt_values.min() != alt_values.max():
                        axis = alt_axis
                        values = alt_values
                        order = np.argsort(values, kind="stable")
                        break
                else:
                    node.positions = np.sort(positions)
                    return node
            else:
                node.positions = np.sort(positions)
                return node
        node.axis = axis
        node.split = float(values[order[mid]])
        left_mask = values < node.split
        if not left_mask.any() or left_mask.all():
            # Degenerate median (many ties): split at strict less-than of
            # the median value still produced one empty side; partition by
            # order index instead.
            left_positions = positions[order[:mid]]
            right_positions = positions[order[mid:]]
        else:
            left_positions = positions[left_mask]
            right_positions = positions[~left_mask]
        node.left = self._build(left_positions, depth + 1)
        node.right = self._build(right_positions, depth + 1)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_indices(self, box: Box) -> np.ndarray:
        if box.dim != self.dim:
            raise ValueError(f"box dim {box.dim} != index dim {self.dim}")
        self._ensure_built()
        self.stats.queries += 1
        if self._root is None:
            return np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if np.any(node.lo > box.hi) or np.any(node.hi < box.lo):
                continue
            if node.is_leaf:
                block = self._points[node.positions]
                self.stats.point_comparisons += node.positions.size
                inside = np.all((block >= box.lo) & (block <= box.hi), axis=1)
                if inside.any():
                    out.append(node.positions[inside])
            else:
                stack.append(node.left)
                stack.append(node.right)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    def knn_indices(self, point: Sequence[float], k: int) -> np.ndarray:
        p = as_point(point, dim=self.dim)
        self._ensure_built()
        if k <= 0 or self._root is None:
            return np.empty(0, dtype=np.int64)
        self.stats.queries += 1
        k = min(k, self.size)
        counter = itertools.count()
        heap: list[tuple[float, int, int, object]] = [
            (self._min_sq_dist(self._root, p), next(counter), 0, self._root)
        ]
        result: list[int] = []
        while heap and len(result) < k:
            _dist, _tie, kind, payload = heapq.heappop(heap)
            if kind == 1:
                result.append(payload)  # type: ignore[arg-type]
                continue
            node: _Node = payload  # type: ignore[assignment]
            self.stats.node_accesses += 1
            if node.is_leaf:
                block = self._points[node.positions]
                self.stats.point_comparisons += node.positions.size
                dists = np.sum((block - p) ** 2, axis=1)
                for pos, dist in zip(node.positions, dists):
                    heapq.heappush(heap, (float(dist), int(pos), 1, int(pos)))
            else:
                for child in (node.left, node.right):
                    heapq.heappush(
                        heap,
                        (self._min_sq_dist(child, p), next(counter), 0, child),
                    )
        return np.array(result, dtype=np.int64)

    @staticmethod
    def _min_sq_dist(node: _Node, p: np.ndarray) -> float:
        delta = np.maximum(0.0, np.maximum(node.lo - p, p - node.hi))
        return float(np.dot(delta, delta))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def height(self) -> int:
        self._ensure_built()

        def depth(node: "_Node | None") -> int:
            if node is None or node.is_leaf:
                return 1
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root) if self._root else 0
