"""Data-space plotting scenes on top of the SVG builder.

A :class:`PlotScene` maps a 2-D data universe (a :class:`Box`) to SVG
pixels (y flipped, margins for axes), and offers the drawing vocabulary
of the paper's figures: labelled points, window rectangles, box-union
regions, staircases, and movement arrows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.region import BoxRegion
from repro.viz.svg import SvgDocument

__all__ = ["PlotScene", "PALETTE"]

PALETTE = {
    "point": "#1a1a2e",
    "query": "#c0392b",
    "why_not": "#2471a3",
    "member": "#1e8449",
    "window": "#8e44ad",
    "region": "#f1c40f",
    "safe": "#27ae60",
    "ddr": "#2980b9",
    "movement": "#d35400",
}


class PlotScene:
    """One 2-D figure: a data universe mapped onto an SVG canvas."""

    def __init__(
        self,
        bounds: Box,
        width: int = 520,
        height: int = 420,
        margin: int = 46,
        title: str = "",
        labels: tuple[str, str] = ("x", "y"),
    ) -> None:
        if bounds.dim != 2:
            raise InvalidParameterError("PlotScene renders 2-D data only")
        if np.any(bounds.extent <= 0):
            raise InvalidParameterError("plot bounds must have positive extent")
        self.bounds = bounds
        self.margin = margin
        self.doc = SvgDocument(width, height)
        self._plot_w = width - 2 * margin
        self._plot_h = height - 2 * margin
        self.title = title
        self.labels = labels
        self._legend: list[tuple[str, str]] = []
        self._draw_frame()

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def to_px(self, point: Sequence[float]) -> tuple[float, float]:
        p = np.asarray(point, dtype=np.float64)
        rel = (p - self.bounds.lo) / self.bounds.extent
        x = self.margin + rel[0] * self._plot_w
        y = self.margin + (1.0 - rel[1]) * self._plot_h
        return float(x), float(y)

    def _box_px(self, box: Box) -> tuple[float, float, float, float]:
        x0, y1 = self.to_px(box.lo)
        x1, y0 = self.to_px(box.hi)
        return x0, y0, x1 - x0, y1 - y0

    # ------------------------------------------------------------------
    # Frame / axes
    # ------------------------------------------------------------------
    def _draw_frame(self) -> None:
        doc = self.doc
        m = self.margin
        doc.rect(m, m, self._plot_w, self._plot_h, fill="none", stroke="#888")
        if self.title:
            doc.text(
                doc.width / 2, m - 14, self.title, size=13, anchor="middle"
            )
        doc.text(
            doc.width / 2, doc.height - 8, self.labels[0], anchor="middle"
        )
        doc.text(12, doc.height / 2, self.labels[1], anchor="middle",
                 style="writing-mode: tb;")
        for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = self.bounds.lo + frac * self.bounds.extent
            x_px = m + frac * self._plot_w
            y_px = m + (1 - frac) * self._plot_h
            doc.line(x_px, m + self._plot_h, x_px, m + self._plot_h + 4,
                     stroke="#888")
            doc.text(x_px, m + self._plot_h + 16, f"{value[0]:g}",
                     size=9, anchor="middle")
            doc.line(m - 4, y_px, m, y_px, stroke="#888")
            doc.text(m - 6, y_px + 3, f"{value[1]:g}", size=9, anchor="end")

    # ------------------------------------------------------------------
    # Drawing vocabulary
    # ------------------------------------------------------------------
    def add_points(
        self,
        points: np.ndarray,
        color: str = PALETTE["point"],
        radius: float = 3.0,
        label: str | None = None,
        names: Sequence[str] | None = None,
    ) -> None:
        arr = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        for i, point in enumerate(arr):
            x, y = self.to_px(point)
            self.doc.circle(x, y, radius, fill=color)
            if names is not None and i < len(names):
                self.doc.text(x + 5, y - 5, names[i], size=10, fill=color)
        if label:
            self._legend.append((label, color))

    def add_marker(
        self,
        point: Sequence[float],
        color: str = PALETTE["query"],
        label: str | None = None,
        name: str | None = None,
    ) -> None:
        x, y = self.to_px(point)
        size = 5.0
        self.doc.line(x - size, y - size, x + size, y + size, stroke=color,
                      stroke_width=2)
        self.doc.line(x - size, y + size, x + size, y - size, stroke=color,
                      stroke_width=2)
        if name:
            self.doc.text(x + 6, y - 6, name, size=10, fill=color)
        if label:
            self._legend.append((label, color))

    def add_box(
        self,
        box: Box,
        color: str = PALETTE["window"],
        fill: bool = False,
        dash: str | None = "5,4",
        label: str | None = None,
        opacity: float = 0.25,
    ) -> None:
        clipped = box.intersect(self.bounds)
        if clipped is None:
            return
        x, y, w, h = self._box_px(clipped)
        self.doc.rect(
            x, y, w, h,
            fill=color if fill else "none",
            stroke=color,
            opacity=opacity if fill else None,
            dash=dash,
        )
        if label:
            self._legend.append((label, color))

    def add_region(
        self,
        region: BoxRegion,
        color: str = PALETTE["safe"],
        label: str | None = None,
        opacity: float = 0.3,
    ) -> None:
        for box in region:
            self.add_box(box, color=color, fill=True, dash=None,
                         opacity=opacity)
        if label:
            self._legend.append((label, color))

    def add_staircase(
        self,
        skyline_points: np.ndarray,
        color: str = PALETTE["member"],
        label: str | None = None,
    ) -> None:
        """The step curve through a (minimising) 2-D skyline."""
        arr = np.asarray(skyline_points, dtype=np.float64).reshape(-1, 2)
        if arr.shape[0] == 0:
            return
        order = np.argsort(arr[:, 0])
        arr = arr[order]
        path = [self.to_px(arr[0])]
        for prev, curr in zip(arr[:-1], arr[1:]):
            path.append(self.to_px([curr[0], prev[1]]))
            path.append(self.to_px(curr))
        self.doc.polyline(path, stroke=color, stroke_width=1.5)
        if label:
            self._legend.append((label, color))

    def add_movement(
        self,
        source: Sequence[float],
        target: Sequence[float],
        color: str = PALETTE["movement"],
        label: str | None = None,
    ) -> None:
        x1, y1 = self.to_px(source)
        x2, y2 = self.to_px(target)
        self.doc.arrow(x1, y1, x2, y2, stroke=color)
        if label:
            self._legend.append((label, color))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def render(self) -> str:
        self._draw_legend()
        return self.doc.render()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())

    def _draw_legend(self) -> None:
        if not self._legend:
            return
        x = self.margin + 8
        y = self.margin + 14
        seen = set()
        for label, color in self._legend:
            if label in seen:
                continue
            seen.add(label)
            self.doc.rect(x, y - 8, 10, 10, fill=color, stroke="none",
                          opacity=0.8)
            self.doc.text(x + 14, y, label, size=10)
            y += 15
