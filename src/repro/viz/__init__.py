"""Dependency-free SVG visualisation of why-not geometry.

Renders the paper's 2-D constructions — windows, dynamic skylines,
anti-dominance regions, safe regions, and the movement arrows of the
modification algorithms — as standalone SVG files.  Used by
``examples/render_paper_figures.py`` to regenerate the geometry of
Figures 1-13 from the actual library outputs.
"""

from repro.viz.scene import PlotScene
from repro.viz.svg import SvgDocument
from repro.viz.figures import (
    render_modification_figure,
    render_safe_region_figure,
    render_scene_figure,
    render_window_figure,
)

__all__ = [
    "SvgDocument",
    "PlotScene",
    "render_window_figure",
    "render_safe_region_figure",
    "render_modification_figure",
    "render_scene_figure",
]
