"""Figure builders: the paper's geometric constructions from live data.

Each function takes an engine plus the relevant points and returns a
finished :class:`PlotScene`; ``examples/render_paper_figures.py`` uses
them to regenerate the geometry of the paper's Figures 4-13 for the
worked example (or any other 2-D dataset).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.engine import WhyNotEngine
from repro.core.safe_region import anti_dominance_region
from repro.geometry.transform import window_box
from repro.viz.scene import PALETTE, PlotScene

__all__ = [
    "render_scene_figure",
    "render_window_figure",
    "render_safe_region_figure",
    "render_modification_figure",
]


def _base_scene(engine: WhyNotEngine, title: str) -> PlotScene:
    scene = PlotScene(engine.bounds, title=title)
    scene.add_points(engine.products, label="products")
    return scene


def render_scene_figure(engine: WhyNotEngine, query: Sequence[float]) -> PlotScene:
    """Products, the query, and its reverse skyline (Fig. 1 style)."""
    q = np.asarray(query, dtype=np.float64)
    scene = _base_scene(engine, "Reverse skyline of q")
    members = engine.reverse_skyline(q)
    scene.add_points(
        engine.customers[members],
        color=PALETTE["member"],
        radius=4.0,
        label="RSL(q)",
    )
    scene.add_marker(q, label="query q", name="q")
    return scene


def render_window_figure(
    engine: WhyNotEngine,
    why_not: "int | Sequence[float]",
    query: Sequence[float],
) -> PlotScene:
    """The Dellis-Seeger window of one customer (Fig. 4 style)."""
    point, _exclude = engine._resolve_customer(why_not)
    q = np.asarray(query, dtype=np.float64)
    scene = _base_scene(engine, "Window query of the why-not point")
    scene.add_box(window_box(point, q), label="window", dash="6,4")
    explanation = engine.explain(why_not, q)
    if explanation.culprits.size:
        scene.add_points(
            explanation.culprits,
            color=PALETTE["window"],
            radius=4.5,
            label="culprits (Λ)",
        )
    scene.add_marker(point, color=PALETTE["why_not"], label="why-not point",
                     name="c_t")
    scene.add_marker(q, label="query q", name="q")
    return scene


def render_safe_region_figure(
    engine: WhyNotEngine,
    query: Sequence[float],
    why_not: "int | Sequence[float] | None" = None,
    approximate: bool = False,
    k: int = 10,
) -> PlotScene:
    """Safe region of the query, optionally with the why-not point's
    anti-dominance region overlaid (Figs. 11-12 style)."""
    q = np.asarray(query, dtype=np.float64)
    title = "Approximate safe region" if approximate else "Safe region of q"
    scene = _base_scene(engine, title)
    safe = engine.safe_region(q, approximate=approximate, k=k)
    scene.add_region(safe.region, label="SR(q)")
    if why_not is not None:
        point, exclude = engine._resolve_customer(why_not)
        ddr = anti_dominance_region(
            engine.index, point, engine._geometry_bounds(q), exclude=exclude
        )
        scene.add_region(
            ddr, color=PALETTE["ddr"], label="anti-dominance of c_t",
            opacity=0.18,
        )
        scene.add_marker(point, color=PALETTE["why_not"],
                         label="why-not point", name="c_t")
    members = engine.reverse_skyline(q)
    scene.add_points(
        engine.customers[members], color=PALETTE["member"], radius=4.0,
        label="RSL(q)",
    )
    scene.add_marker(q, label="query q", name="q")
    return scene


def render_modification_figure(
    engine: WhyNotEngine,
    why_not: "int | Sequence[float]",
    query: Sequence[float],
    method: str = "mwp",
) -> PlotScene:
    """Candidate movements of MWP / MQP / MWQ (Figs. 6-9, 13 style)."""
    point, _exclude = engine._resolve_customer(why_not)
    q = np.asarray(query, dtype=np.float64)
    titles = {
        "mwp": "Moving the why-not point (Algorithm 1)",
        "mqp": "Moving the query point (Algorithm 2)",
        "mwq": "Moving both points (Algorithm 4)",
    }
    if method not in titles:
        raise ValueError(f"unknown method {method!r}; use mwp/mqp/mwq")
    scene = _base_scene(engine, titles[method])
    scene.add_box(window_box(point, q), label="window", dash="6,4")
    scene.add_marker(point, color=PALETTE["why_not"], label="why-not point",
                     name="c_t")
    scene.add_marker(q, label="query q", name="q")

    if method == "mwp":
        result = engine.modify_why_not_point(why_not, q)
        for cand in result:
            scene.add_movement(point, cand.point, label="c_t* candidates")
    elif method == "mqp":
        result = engine.modify_query_point(why_not, q)
        for cand in result:
            scene.add_movement(q, cand.point, label="q* candidates")
    else:
        safe = engine.safe_region(q)
        scene.add_region(safe.region, label="SR(q)")
        outcome = engine.modify_both(why_not, q)
        if outcome.case.value == "C1":
            best = outcome.best_query_candidate()
            if best is not None:
                scene.add_movement(q, best.point, label="q* (zero cost)")
        else:
            pair = outcome.best_pair()
            if pair is not None:
                q_cand, c_cand = pair
                scene.add_movement(q, q_cand.point, label="q* (in SR)")
                scene.add_movement(point, c_cand.point,
                                   color=PALETTE["why_not"],
                                   label="c_t* movement")
    return scene
