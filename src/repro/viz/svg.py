"""A minimal SVG document builder (no third-party dependencies).

Only the primitives the plot scenes need: rectangles, circles, lines,
polylines, text, dashed strokes, opacity, and groups.  Coordinates are
already in SVG pixel space by the time they reach this layer; the
data-space mapping lives in :mod:`repro.viz.scene`.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgDocument"]


def _fmt(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    text = f"{value:.3f}".rstrip("0").rstrip(".")
    return text if text else "0"


class SvgDocument:
    """An append-only SVG document.

    >>> doc = SvgDocument(100, 80)
    >>> doc.rect(10, 10, 30, 20, fill="#eee", stroke="black")
    >>> svg = doc.render()
    >>> svg.startswith("<?xml") and "</svg>" in svg
    True
    """

    def __init__(self, width: float, height: float, background: str | None = "white") -> None:
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def _attrs(self, **attrs: "str | float | None") -> str:
        parts = []
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            if isinstance(value, (int, float)):
                parts.append(f"{name}={quoteattr(_fmt(float(value)))}")
            else:
                parts.append(f"{name}={quoteattr(str(value))}")
        return " ".join(parts)

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float | None = None,
        dash: str | None = None,
    ) -> None:
        self._elements.append(
            f"<rect {self._attrs(x=x, y=y, width=max(width, 0.0), height=max(height, 0.0), fill=fill, stroke=stroke, stroke_width=stroke_width, fill_opacity=opacity, stroke_dasharray=dash)} />"
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        stroke: str = "none",
        stroke_width: float = 1.0,
        opacity: float | None = None,
    ) -> None:
        self._elements.append(
            f"<circle {self._attrs(cx=cx, cy=cy, r=r, fill=fill, stroke=stroke, stroke_width=stroke_width, fill_opacity=opacity)} />"
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
        marker_end: str | None = None,
    ) -> None:
        self._elements.append(
            f"<line {self._attrs(x1=x1, y1=y1, x2=x2, y2=y2, stroke=stroke, stroke_width=stroke_width, stroke_dasharray=dash, marker_end=marker_end)} />"
        )

    def polyline(
        self,
        points: "list[tuple[float, float]]",
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f"<polyline {self._attrs(points=path, fill='none', stroke=stroke, stroke_width=stroke_width, stroke_dasharray=dash)} />"
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 11.0,
        fill: str = "black",
        anchor: str = "start",
        style: str | None = None,
    ) -> None:
        self._elements.append(
            f"<text {self._attrs(x=x, y=y, font_size=size, fill=fill, text_anchor=anchor, style=style, font_family='sans-serif')}>{escape(content)}</text>"
        )

    def arrow(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.2,
    ) -> None:
        """A line with a small triangular head drawn manually (no defs)."""
        self.line(x1, y1, x2, y2, stroke=stroke, stroke_width=stroke_width)
        # Head: two short segments rotated ±25° from the reverse direction.
        import math

        angle = math.atan2(y2 - y1, x2 - x1)
        head = 7.0
        for offset in (math.radians(155), math.radians(-155)):
            self.line(
                x2,
                y2,
                x2 + head * math.cos(angle + offset),
                y2 + head * math.sin(angle + offset),
                stroke=stroke,
                stroke_width=stroke_width,
            )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def render(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(self.width)}" '
            f'height="{_fmt(self.height)}" viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
