"""Skyline distance (Huang, Jiang, Pei, Chen & Tang [18]).

The paper positions its query-point modification against *skyline
distance*: the minimum cost of upgrading a dominated point so it enters
the (static) skyline.  This module solves it over our substrates.

Formulation.  Upgrading only ever means improving (decreasing)
coordinates.  A point ``p*`` escapes domination — under the library's
STRICT exclusion convention — when for every product ``x`` some dimension
has ``p*_d <= x_d``; only the *strict dominators* of ``p`` constrain the
move, and among them only the skyline ones.  Writing ``v_d = p_d - p*_d``
for the per-dimension improvement, each dominator ``s`` requires
``∃d: v_d >= p_d - s_d`` — a covering problem over the gap vectors,
solved exactly for 2-D by the same sorted-staircase argument as
Algorithm 1 (the dominators form an antichain), and by the best
single-dimension assignment plus a greedy refinement for ``d > 2``
(upper bound; every returned candidate is verified feasible).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_point, as_points
from repro.skyline.algorithms import skyline_indices

__all__ = ["skyline_distance", "skyline_upgrade_candidates"]


def skyline_upgrade_candidates(
    products: np.ndarray, point: Sequence[float]
) -> np.ndarray:
    """Candidate upgraded positions for ``point`` (one per covering split).

    Returns an ``(m, d)`` matrix of positions at which ``point`` is no
    longer strictly dominated by any product; ``point`` itself when it
    already is not.  Exact (all maximal candidates) for 2-D.
    """
    arr = as_points(products)
    p = as_point(point, dim=arr.shape[1] if arr.size else None)
    dominators = _minimal_dominators(arr, p)
    if dominators.shape[0] == 0:
        return p.reshape(1, -1)
    return _covering_positions(dominators, p)


def skyline_distance(
    products: np.ndarray,
    point: Sequence[float],
    weights: Sequence[float] | None = None,
) -> tuple[float, np.ndarray]:
    """Minimum weighted-L1 upgrade cost and the optimal position.

    Parameters
    ----------
    products:
        ``(n, d)`` product matrix (minimising every dimension).
    point:
        The point to upgrade.
    weights:
        Per-dimension cost weights (uniform by default).

    Returns
    -------
    ``(cost, position)`` — zero cost and the original position when the
    point is already undominated.
    """
    arr = as_points(products)
    p = as_point(point, dim=arr.shape[1] if arr.size else None)
    w = (
        np.asarray(weights, dtype=np.float64)
        if weights is not None
        else np.ones(p.size)
    )
    if w.size != p.size or np.any(w < 0):
        raise InvalidParameterError(
            "weights must be non-negative with one entry per dimension"
        )
    candidates = skyline_upgrade_candidates(arr, p)
    costs = np.sum(w * np.abs(p - candidates), axis=1)
    best = int(np.argmin(costs))
    return float(costs[best]), candidates[best]


def _minimal_dominators(arr: np.ndarray, p: np.ndarray) -> np.ndarray:
    """The skyline points strictly dominating ``p`` (an antichain)."""
    if arr.shape[0] == 0:
        return np.empty((0, p.size))
    sky = arr[skyline_indices(arr)]
    return sky[np.all(sky < p, axis=1)]


def _covering_positions(dominators: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Upgraded positions satisfying ``∀s ∃d: pos_d <= s_d``.

    Coordinates are copied from the dominators themselves (never derived
    arithmetically), so the boundary equalities that make a position
    feasible are exact in floating point.  2-D: the exact split family
    over the dominator antichain; d > 2: one single-dimension cover per
    dimension plus a greedy multi-dimension cover (feasible upper bounds).
    """
    m, dim = dominators.shape
    out: list[np.ndarray] = []
    # Single-dimension covers: drop one coordinate to the smallest
    # dominator value there.
    for d in range(dim):
        position = p.copy()
        position[d] = dominators[:, d].min()
        out.append(position)
    if dim == 2 and m > 1:
        order = np.argsort(dominators[:, 0], kind="stable")
        sorted_dom = dominators[order]  # x ascending, hence y descending.
        for split in range(1, m):
            # Suffix (large x) covered via dim 0 at its smallest x value;
            # prefix covered via dim 1 at its smallest y value.
            out.append(
                np.array(
                    [
                        sorted_dom[split:, 0].min(),
                        sorted_dom[:split, 1].min(),
                    ]
                )
            )
    elif dim > 2 and m > 1:
        # Greedy: walk the dominators by decreasing total gap, covering
        # each uncovered one along its currently cheapest dimension.
        order = np.argsort(-(p - dominators).sum(axis=1), kind="stable")
        position = p.copy()
        for row in order:
            s = dominators[row]
            if np.any(position <= s):
                continue
            d = int(np.argmin(position - s))
            position[d] = s[d]
        out.append(position)
    return np.unique(np.vstack(out), axis=0)
