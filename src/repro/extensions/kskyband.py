"""k-skyband generalisation of the why-not machinery (a future-work
extension of the paper).

The *k-skyband* relaxes the skyline: a point belongs when fewer than
``k`` points dominate it (``k = 1`` recovers the skyline).  Carrying the
relaxation through the paper's definitions gives:

* **dynamic k-skyband** of a customer — products dominated w.r.t. the
  customer by fewer than ``k`` others;
* **reverse k-skyband** of a query — customers whose window contains
  fewer than ``k`` dominators of the query.  A customer may tolerate a
  few better products and still shortlist ``q``;
* **why-not with tolerance** — ``c_t`` is outside the reverse k-skyband
  because ``m >= k`` products beat ``q``; a repair only needs to
  neutralise ``m - k + 1`` of them.  ``modify_why_not_point_kskyband``
  chooses which ``k - 1`` blockers to tolerate (exhaustively for small
  windows, greedily otherwise), runs Algorithm 1 against the rest, and
  verifies every candidate under the relaxed membership test.

With ``k = 1`` every function degenerates to its paper counterpart
(property-tested).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.config import DominancePolicy, WhyNotConfig
from repro.core._staircase import staircase_distance_candidates
from repro.core.answer import Candidate, ModificationResult
from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_point, as_points
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.skyline.algorithms import skyline_indices
from repro.skyline.window import window_query_indices

__all__ = [
    "kskyband_indices",
    "dynamic_kskyband_indices",
    "reverse_kskyband",
    "is_reverse_kskyband_member",
    "modify_why_not_point_kskyband",
]

_CHUNK = 512
_EXHAUSTIVE_LIMIT = 500


def kskyband_indices(points: np.ndarray, k: int) -> np.ndarray:
    """Positions of points dominated (weakly) by fewer than ``k`` others."""
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    arr = as_points(points)
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    for start in range(0, n, _CHUNK):
        block = arr[start:start + _CHUNK]  # (b, d)
        dominates = np.all(arr[None, :, :] <= block[:, None, :], axis=2) & np.any(
            arr[None, :, :] < block[:, None, :], axis=2
        )  # (b, n): column j dominates block row i.
        counts[start:start + _CHUNK] = dominates.sum(axis=1)
    return np.flatnonzero(counts < k).astype(np.int64)


def dynamic_kskyband_indices(
    points: np.ndarray,
    origin: Sequence[float],
    k: int,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """The dynamic k-skyband of ``origin``: transform then k-skyband."""
    arr = as_points(points)
    o = as_point(origin, dim=arr.shape[1] if arr.size else None)
    mask = np.ones(arr.shape[0], dtype=bool)
    excluded = np.asarray(tuple(exclude), dtype=np.int64)
    if excluded.size:
        mask[excluded] = False
    positions = np.flatnonzero(mask)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    transformed = to_query_space(arr[positions], o)
    local = kskyband_indices(transformed, k)
    return positions[local]


def query_dominators(
    index: SpatialIndex,
    customer: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.STRICT,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Products dominating ``query`` w.r.t. ``customer`` (the window set)."""
    return window_query_indices(index, customer, query, policy, exclude)


def is_reverse_kskyband_member(
    index: SpatialIndex,
    customer: Sequence[float],
    query: Sequence[float],
    k: int,
    policy: DominancePolicy = DominancePolicy.STRICT,
    exclude: Sequence[int] = (),
) -> bool:
    """True when fewer than ``k`` products beat the query for this
    customer (``k = 1``: the ordinary reverse-skyline test)."""
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    return query_dominators(index, customer, query, policy, exclude).size < k


def reverse_kskyband(
    index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    k: int,
    policy: DominancePolicy = DominancePolicy.STRICT,
    self_exclude: bool = False,
) -> np.ndarray:
    """Positions of customers whose dynamic k-skyband contains the query."""
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    custs = as_points(customers, dim=index.dim)
    if self_exclude and custs.shape[0] != index.size:
        raise ValueError(
            "self_exclude requires customers to be the indexed product matrix"
        )
    members = [
        j
        for j in range(custs.shape[0])
        if is_reverse_kskyband_member(
            index, custs[j], query, k, policy,
            exclude=(j,) if self_exclude else (),
        )
    ]
    return np.asarray(members, dtype=np.int64)


def modify_why_not_point_kskyband(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    k: int,
    config: WhyNotConfig | None = None,
    weights: Sequence[float] | None = None,
    exclude: Sequence[int] = (),
) -> ModificationResult:
    """Algorithm 1 with tolerance: move ``c_t`` until fewer than ``k``
    products beat the query.

    The ``k - 1`` blockers to tolerate are chosen exhaustively when the
    window is small (every subset of that size is tried) and greedily
    otherwise (tolerate the blockers whose neutralisation would require
    the largest movement).  Candidates from every tried subset are pooled,
    verified under the relaxed membership test, and ranked by cost.
    """
    config = config or WhyNotConfig()
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    dominators = query_dominators(index, c_t, q, config.policy, exclude)
    result = ModificationResult(
        method=f"MWP-k{k}",
        why_not=c_t,
        query=q,
        lambda_positions=dominators,
    )
    w = np.asarray(
        weights if weights is not None else np.full(index.dim, 1.0 / index.dim),
        dtype=np.float64,
    )
    if dominators.size < k:
        result.candidates.append(Candidate(c_t, cost=0.0, verified=True))
        return result

    tolerate = k - 1
    subsets = _tolerated_subsets(
        index, dominators, q, tolerate
    )
    seen: set[bytes] = set()
    for allowed in subsets:
        blockers = np.asarray(
            [d for d in dominators.tolist() if d not in allowed],
            dtype=np.int64,
        )
        for point in _algorithm1_points(index, c_t, q, blockers, config):
            key = point.tobytes()
            if key in seen:
                continue
            seen.add(key)
            cost = float(np.sum(w * np.abs(c_t - point)))
            verified: bool | None = None
            if config.verify:
                verified = (
                    _tolerant_dominator_count(
                        index, point, q, config.policy, exclude
                    )
                    < k
                )
            result.candidates.append(
                Candidate(point, cost=cost, verified=verified)
            )
    result.candidates.sort(key=lambda cand: cand.cost)
    return result


def _tolerated_subsets(
    index: SpatialIndex,
    dominators: np.ndarray,
    q: np.ndarray,
    tolerate: int,
) -> list[set[int]]:
    """Which blockers to leave alone: all subsets when cheap, otherwise
    the greedy choice (tolerate the hardest-to-neutralise blockers — the
    ones farthest from the query)."""
    if tolerate == 0:
        return [set()]
    m = dominators.size
    count = 1
    for i in range(tolerate):
        count = count * (m - i) // (i + 1)
    if count <= _EXHAUSTIVE_LIMIT:
        return [
            set(combo)
            for combo in itertools.combinations(dominators.tolist(), tolerate)
        ]
    distances = np.abs(index.points[dominators] - q).sum(axis=1)
    order = np.argsort(-distances, kind="stable")
    return [set(dominators[order[:tolerate]].tolist())]


def _tolerant_dominator_count(
    index: SpatialIndex,
    center: np.ndarray,
    query: np.ndarray,
    policy: DominancePolicy,
    exclude: Sequence[int],
    rtol: float = 1e-12,
) -> int:
    """Dominator count with the rounding slack of
    :func:`repro.core._verify.verify_membership` — candidates sit exactly
    on window boundaries, where the exact test flips on 1-ulp noise."""
    from repro.geometry.box import Box

    radii = np.abs(center - query)
    scale = max(1.0, float(np.max(np.abs(center))), float(np.max(np.abs(query))))
    slack = rtol * scale
    hits = index.range_indices(Box(center - radii - slack, center + radii + slack))
    excluded = np.asarray(tuple(exclude), dtype=np.int64)
    if excluded.size:
        hits = hits[~np.isin(hits, excluded)]
    if hits.size == 0:
        return 0
    dists = np.abs(index.points[hits] - center)
    if policy is DominancePolicy.STRICT:
        blocking = np.all(dists < radii - slack, axis=1)
    else:
        blocking = np.all(dists <= radii + slack, axis=1) & np.any(
            dists < radii - slack, axis=1
        )
    return int(blocking.sum())


def _algorithm1_points(
    index: SpatialIndex,
    c_t: np.ndarray,
    q: np.ndarray,
    blockers: np.ndarray,
    config: WhyNotConfig,
) -> np.ndarray:
    """Algorithm-1 candidate positions against an explicit blocker set."""
    if blockers.size == 0:
        return c_t.reshape(1, -1)
    from_q = to_query_space(index.points[blockers], q)
    frontier_local = skyline_indices(from_q)
    midpoints = from_q[frontier_local] / 2.0
    if config.margin > 0.0:
        midpoints = midpoints * (1.0 - config.margin)
    cap = np.abs(q - c_t)
    vectors = staircase_distance_candidates(midpoints, cap, config.sort_dim)
    direction = np.sign(c_t - q)
    return q + direction * vectors
