"""Extensions beyond the paper's core contribution.

Implementations of closely related machinery the paper discusses in its
related-work section, built on the same substrates:

* :mod:`repro.extensions.skyline_distance` — the *skyline distance* of
  Huang et al. [18]: the minimum cost of upgrading a point into the
  (static) skyline, which the paper positions its query-point
  modification against;
* :mod:`repro.extensions.kskyband` — the k-skyband relaxation of the
  whole pipeline (reverse k-skyband, why-not with tolerance k).
"""

from repro.extensions.kskyband import (
    dynamic_kskyband_indices,
    is_reverse_kskyband_member,
    kskyband_indices,
    modify_why_not_point_kskyband,
    reverse_kskyband,
)
from repro.extensions.skyline_distance import (
    skyline_distance,
    skyline_upgrade_candidates,
)

__all__ = [
    "skyline_distance",
    "skyline_upgrade_candidates",
    "kskyband_indices",
    "dynamic_kskyband_indices",
    "reverse_kskyband",
    "is_reverse_kskyband_member",
    "modify_why_not_point_kskyband",
]
