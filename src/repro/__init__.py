"""repro — why-not explanations for reverse skyline queries.

A complete, from-scratch reproduction of Islam, Zhou & Liu, *On Answering
Why-not Questions in Reverse Skyline Queries* (ICDE 2013): skyline and
reverse-skyline substrates (including an R*-tree and BBRS), the four
why-not algorithms (MWP, MQP, exact safe region, MWQ), the approximate
safe region, data generators, and the full experiment harness.

Quick start::

    import numpy as np
    from repro import WhyNotEngine

    points = np.array([[5, 30], [7.5, 42], [2.5, 70], [7.5, 90],
                       [24, 20], [20, 50], [26, 70], [16, 80]])
    engine = WhyNotEngine(points)          # monochromatic, as in the paper
    q = np.array([8.5, 55.0])
    engine.reverse_skyline(q)              # -> customer positions
    engine.explain(0, q).describe()        # why is customer 0 missing?
    engine.modify_why_not_point(0, q)      # Algorithm 1
    engine.modify_both(0, q)               # Algorithm 4
"""

from repro.config import (
    CostWeights,
    DominancePolicy,
    RTreeConfig,
    WhyNotConfig,
)
from repro.core import (
    ApproximateDSLStore,
    RelaxationOption,
    leave_one_out_regions,
    relaxation_analysis,
    WhyNotAnswer,
    answer_why_not,
    answer_why_not_batch,
    Candidate,
    Explanation,
    MinMaxNormalizer,
    ModificationResult,
    MWQCase,
    MWQResult,
    SafeRegion,
    WhyNotEngine,
    compute_safe_region,
    explain_why_not,
    modify_query_and_why_not_point,
    modify_query_point,
    modify_why_not_point,
)
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    IndexCorruptionError,
    InvalidParameterError,
    ReproError,
    StaleSessionError,
)
from repro.geometry import Box, BoxRegion
from repro.index import RTree, ScanIndex, SpatialIndex
from repro.kernels import (
    batch_lambda_counts,
    batch_verify_membership,
    batch_window_membership,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    environment_provenance,
    export_obs,
    render_span_tree,
    to_prometheus,
    validate_export,
)
from repro.plan import (
    CostModel,
    DatasetStats,
    PlanCache,
    PlanReport,
    PreparedPlan,
    render_plan_tree,
)
from repro.skyline import (
    dynamic_skyline_indices,
    reverse_skyline_bbrs,
    reverse_skyline_naive,
    skyline_indices,
)
from repro.store import (
    CustomerStore,
    Mutation,
    ProductStore,
    Snapshot,
    VersionedStore,
    WhyNotSession,
)

__version__ = "1.0.0"

__all__ = [
    "WhyNotEngine",
    "WhyNotConfig",
    "DominancePolicy",
    "CostWeights",
    "RTreeConfig",
    "Candidate",
    "Explanation",
    "ModificationResult",
    "MWQCase",
    "MWQResult",
    "SafeRegion",
    "MinMaxNormalizer",
    "ApproximateDSLStore",
    "WhyNotAnswer",
    "answer_why_not",
    "answer_why_not_batch",
    "RelaxationOption",
    "leave_one_out_regions",
    "relaxation_analysis",
    "explain_why_not",
    "modify_why_not_point",
    "modify_query_point",
    "modify_query_and_why_not_point",
    "compute_safe_region",
    "skyline_indices",
    "dynamic_skyline_indices",
    "reverse_skyline_naive",
    "reverse_skyline_bbrs",
    "batch_window_membership",
    "batch_lambda_counts",
    "batch_verify_membership",
    "CostModel",
    "DatasetStats",
    "PlanCache",
    "PlanReport",
    "PreparedPlan",
    "render_plan_tree",
    "Observability",
    "Tracer",
    "MetricsRegistry",
    "export_obs",
    "render_span_tree",
    "to_prometheus",
    "validate_export",
    "environment_provenance",
    "Box",
    "BoxRegion",
    "SpatialIndex",
    "ScanIndex",
    "RTree",
    "ProductStore",
    "CustomerStore",
    "VersionedStore",
    "Mutation",
    "Snapshot",
    "WhyNotSession",
    "ReproError",
    "DimensionMismatchError",
    "EmptyDatasetError",
    "InvalidParameterError",
    "IndexCorruptionError",
    "StaleSessionError",
    "__version__",
]
