"""The :class:`PreferenceModel`: validated per-dimension weights + policy.

The model is deliberately tiny and frozen: it is hashed into plan-cache
keys, pooled-plan keys and the serve layer's coalescing keys, so two
requests share cached artifacts exactly when their preference
fingerprints are equal.  Validation happens at construction — every
layer downstream may assume a model it receives is well-formed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError

__all__ = [
    "PreferenceModel",
    "UNIT_PREFS",
    "as_weight_vector",
    "support_dims",
]


def as_weight_vector(
    weights: "Sequence[float] | np.ndarray", dim: int | None = None
) -> np.ndarray:
    """Validate and coerce a raw weight sequence to a float64 vector.

    Raises :class:`~repro.exceptions.InvalidParameterError` on the
    malformed shapes the serve layer must reject with a structured 400:
    wrong length, negative entries, non-finite entries, all-zero.
    """
    try:
        w = np.asarray(weights, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"weights must be a numeric sequence, got {weights!r}"
        ) from exc
    if w.ndim != 1:
        raise InvalidParameterError(
            f"weights must be a flat vector, got shape {w.shape}"
        )
    if dim is not None and w.shape[0] != dim:
        raise InvalidParameterError(
            f"weights must have one entry per dimension "
            f"(expected {dim}, got {w.shape[0]})"
        )
    if not np.all(np.isfinite(w)):
        raise InvalidParameterError("weights must be finite")
    if np.any(w < 0):
        raise InvalidParameterError("weights must be non-negative")
    if not np.any(w > 0):
        raise InvalidParameterError("at least one weight must be positive")
    return w


def support_dims(
    weights: "np.ndarray | None", dim: int
) -> "np.ndarray | None":
    """Column indices with positive weight, or ``None`` for full support.

    ``None`` is the fast-path sentinel every kernel understands: no
    slicing, the historical (bit-identical) code path runs.
    """
    if weights is None:
        return None
    w = np.asarray(weights, dtype=np.float64)
    if w.shape[0] != dim:
        raise InvalidParameterError(
            f"weights must have one entry per dimension "
            f"(expected {dim}, got {w.shape[0]})"
        )
    support = np.flatnonzero(w > 0)
    if support.size == dim:
        return None
    return support.astype(np.int64, copy=False)


@dataclass(frozen=True)
class PreferenceModel:
    """Per-dimension non-negative weights plus the dominance policy.

    Attributes
    ----------
    weights:
        Tuple of per-dimension weights, or ``None`` for unit weights
        (the historical behaviour).  Validated at construction:
        non-negative, finite, at least one positive.
    policy:
        The WEAK/STRICT boundary convention every dominance comparison
        under this preference uses.
    """

    weights: "tuple[float, ...] | None" = None
    policy: DominancePolicy = field(default=DominancePolicy.WEAK)

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", DominancePolicy(self.policy))
        if self.weights is not None:
            w = as_weight_vector(self.weights)
            object.__setattr__(
                self, "weights", tuple(float(x) for x in w)
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        weights: "Sequence[float] | np.ndarray | None",
        policy: DominancePolicy,
        dim: int | None = None,
    ) -> "PreferenceModel":
        """Build a validated model from a raw request-level weight
        sequence (``None`` = unit weights), checking the length against
        ``dim`` when given."""
        if weights is None:
            return cls(weights=None, policy=policy)
        if isinstance(weights, PreferenceModel):
            raise InvalidParameterError(
                "pass raw weights, not a PreferenceModel"
            )
        w = as_weight_vector(weights, dim)
        return cls(weights=tuple(float(x) for x in w), policy=policy)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def is_unit(self) -> bool:
        """True when every weight is exactly 1 (or defaulted)."""
        return self.weights is None or all(
            w == 1.0 for w in self.weights
        )

    @property
    def full_support(self) -> bool:
        """True when every dimension has positive weight — dominance
        verdicts are then identical to the unweighted paths (scale
        invariance), and only movement costs differ."""
        return self.weights is None or all(w > 0 for w in self.weights)

    def resolved(self, dim: int) -> np.ndarray:
        """The ``(dim,)`` float64 weight vector (ones when defaulted)."""
        if self.weights is None:
            return np.ones(dim, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if w.shape[0] != dim:
            raise InvalidParameterError(
                f"preference has {w.shape[0]} weights but the dataset "
                f"has {dim} dimensions"
            )
        return w

    def support(self, dim: int) -> "np.ndarray | None":
        """Support column indices, or ``None`` for full support (the
        kernels' no-slicing fast-path sentinel)."""
        if self.weights is None:
            return None
        return support_dims(self.resolved(dim), dim)

    def effective_dim(self, dim: int) -> int:
        """Number of dimensions dominance actually compares — the
        support size (cost models key their ``d`` exponents on this)."""
        support = self.support(dim)
        return dim if support is None else int(support.size)

    def weight_array(self, dim: int) -> "np.ndarray | None":
        """The weight vector to thread into the skyline layer: ``None``
        on the unit fast path, the resolved vector otherwise."""
        if self.weights is None:
            return None
        return self.resolved(dim)

    def cost_weights(self, base: np.ndarray) -> np.ndarray:
        """Movement-cost weights: the engine's normalised cost weights
        scaled by the preference magnitudes (deliberately *not*
        renormalised — doubling a weight doubles that dimension's
        movement price)."""
        base = np.asarray(base, dtype=np.float64)
        if self.weights is None:
            return base
        return base * self.resolved(base.shape[0])

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Hashable identity for cache/pool/coalescer keys.

        Unit-weight models of either spelling (``None`` or explicit
        ones) share one fingerprint — they are the same preference, and
        collapsing them keeps the default-path cache hit rate intact.
        """
        if self.is_unit:
            return ("unit", self.policy.value)
        assert self.weights is not None
        return (
            np.asarray(self.weights, dtype=np.float64).tobytes(),
            self.policy.value,
        )

    def describe(self) -> str:
        """Short human label used by EXPLAIN and the journal."""
        if self.is_unit:
            return f"unit/{self.policy.value}"
        ws = ",".join(f"{w:g}" for w in self.weights)  # type: ignore[union-attr]
        return f"[{ws}]/{self.policy.value}"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"PreferenceModel({self.describe()})"


#: The historical behaviour: unit weights, WEAK policy.
UNIT_PREFS = PreferenceModel()
