"""Brute-force weighted-dominance oracle.

Deliberately naive reference implementations of the weighted query
surfaces — nested loops, no index, no kernels, no pruning — used by the
property suite and the CLI ``weighted`` experiment to check the
production paths exactly.  Every function takes a raw weight vector
(``None`` = unit weights) and applies the support-projection semantics
documented in :mod:`repro.prefs`: zero-weight dimensions are dropped
from every comparison, positive magnitudes never change a verdict.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.prefs.model import support_dims

__all__ = [
    "oracle_dominates",
    "oracle_dynamic_skyline",
    "oracle_lambda_positions",
    "oracle_membership",
    "oracle_reverse_skyline",
]


def _sliced(arrays: list[np.ndarray], weights, dim: int) -> list[np.ndarray]:
    support = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        dim,
    )
    if support is None:
        return arrays
    return [np.asarray(a)[..., support] for a in arrays]


def oracle_dominates(
    a: Sequence[float],
    b: Sequence[float],
    weights=None,
    policy: DominancePolicy = DominancePolicy.WEAK,
) -> bool:
    """Does ``a`` dominate ``b`` under the weighted (projected) order?"""
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    av, bv = _sliced([av, bv], weights, av.shape[0])
    if DominancePolicy(policy) is DominancePolicy.STRICT:
        return bool(np.all(av < bv))
    return bool(np.all(av <= bv) and np.any(av < bv))


def oracle_dynamic_skyline(
    points: np.ndarray,
    origin: Sequence[float],
    weights=None,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Positions of the dynamic skyline of ``points`` w.r.t. ``origin``
    over the support dimensions (weak minimality, like the library)."""
    points = np.asarray(points, dtype=np.float64)
    origin = np.asarray(origin, dtype=np.float64)
    dists = np.abs(points - origin)
    (dists,) = _sliced([dists], weights, points.shape[1])
    excluded = set(int(i) for i in exclude)
    keep = []
    for i in range(points.shape[0]):
        if i in excluded:
            continue
        dominated = False
        for j in range(points.shape[0]):
            if j == i or j in excluded:
                continue
            if np.all(dists[j] <= dists[i]) and np.any(dists[j] < dists[i]):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return np.asarray(keep, dtype=np.int64)


def oracle_lambda_positions(
    products: np.ndarray,
    why_not: Sequence[float],
    query: Sequence[float],
    weights=None,
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """The Λ set: products inside the (weighted) window of ``why_not``
    around ``query`` — the culprits blocking membership."""
    products = np.asarray(products, dtype=np.float64)
    c = np.asarray(why_not, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    dim = products.shape[1]
    radii = np.abs(c - q)
    dists = np.abs(products - c)
    dists, radii = _sliced([dists, radii[None, :]], weights, dim)
    radii = radii[0]
    excluded = set(int(i) for i in exclude)
    strict = DominancePolicy(policy) is DominancePolicy.STRICT
    out = []
    for i in range(products.shape[0]):
        if i in excluded:
            continue
        if strict:
            hit = bool(np.all(dists[i] < radii))
        else:
            hit = bool(
                np.all(dists[i] <= radii) and np.any(dists[i] < radii)
            )
        if hit:
            out.append(i)
    return np.asarray(out, dtype=np.int64)


def oracle_membership(
    products: np.ndarray,
    why_not: Sequence[float],
    query: Sequence[float],
    weights=None,
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> bool:
    """Is ``why_not`` in the (weighted) reverse skyline of ``query``?
    Exactly the Lemma-1 test: membership iff Λ is empty."""
    return (
        oracle_lambda_positions(
            products, why_not, query, weights, policy, exclude
        ).size
        == 0
    )


def oracle_reverse_skyline(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    weights=None,
    policy: DominancePolicy = DominancePolicy.WEAK,
    monochromatic: bool = False,
) -> np.ndarray:
    """Positions of every customer in the weighted ``RSL(query)``."""
    customers = np.asarray(customers, dtype=np.float64)
    members = []
    for i in range(customers.shape[0]):
        exclude = (i,) if monochromatic else ()
        if oracle_membership(
            products, customers[i], query, weights, policy, exclude
        ):
            members.append(i)
    return np.asarray(members, dtype=np.int64)
