"""First-class preference model for weighted dominance.

Every dominance-consuming layer of the library historically assumed
unit weights: each dimension counts, and counts equally.  This package
makes the preference explicit — a frozen, validated, fingerprintable
:class:`PreferenceModel` of per-dimension non-negative weights plus the
existing WEAK/STRICT :class:`~repro.config.DominancePolicy` — so the
skyline algorithms, the blocked kernels, the safe-region constructions
and the planner all take the preference as an argument instead of
baking the equal-weights assumption in.

Layering: ``repro.prefs`` sits at the bottom of the library, beside
``repro.config`` — it may import only the shared config/exception
modules and numpy, and every compute layer above may import it (the
rule is pinned by ``tests/test_layering.py`` and the CI walk).

Semantics (see DESIGN.md, "Preference model"):

* **Dominance is scale-invariant.**  For strictly positive weights,
  ``w_i * |c_i - p_i| <= w_i * |c_i - q_i|`` holds exactly when the
  unweighted comparison does, so positive weight *magnitudes* never
  change a dominance verdict.  What a weight vector *does* change is
  its **support**: a zero weight drops that dimension from every
  comparison (projection semantics — the customer is indifferent to
  it).  All weighted dominance therefore reduces to running the
  existing exact machinery over the support's column subset, which is
  also why unit weights are *bit-identical* to the historical paths:
  the full-support fast path is literally the same code.
* **Magnitudes price movement.**  The MWP/MQP/MWQ prescriptions rank
  candidate modifications by weighted L1 movement cost; the preference
  weights multiply into the engine's cost weights (unnormalised), so a
  heavily weighted dimension is expensive to move along.
"""

from repro.prefs.model import (
    PreferenceModel,
    UNIT_PREFS,
    as_weight_vector,
    support_dims,
)
from repro.prefs.oracle import (
    oracle_dominates,
    oracle_dynamic_skyline,
    oracle_lambda_positions,
    oracle_membership,
    oracle_reverse_skyline,
)

__all__ = [
    "PreferenceModel",
    "UNIT_PREFS",
    "as_weight_vector",
    "support_dims",
    "oracle_dominates",
    "oracle_dynamic_skyline",
    "oracle_lambda_positions",
    "oracle_membership",
    "oracle_reverse_skyline",
]
