"""Fan-out/merge driver of the sharded kernels.

A :class:`ShardExecutor` is built once per (dataset epoch, shard
config) pair, holds the partition and — for the process backend — the
lazily started worker pool plus the shared-memory copies of both
matrices, and answers the four sharded calls:

* :meth:`membership_rows` / :meth:`membership_points` — disjoint-union
  mask merge;
* :meth:`lambda_rows` — disjoint-union count merge (customer axis);
* :meth:`lambda_products` — integer-sum count merge (product axis);
* :meth:`safe_region_fold` — region-intersection merge of per-shard
  partial folds (float64 only).

``backend="serial"`` runs the identical task functions in-process in
shard order; it is the deterministic oracle the process backend is
property-tested against, and the two produce the same bits because the
worker code path is shared (:mod:`repro.shard._worker`).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext

import numpy as np

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.kernels.parallel import available_cpus
from repro.shard import _worker
from repro.shard.partition import (
    STRATEGIES,
    partition_matrix,
    shard_assignment,
)
from repro.shard.sharedmem import SharedMatrix
from repro.shard.stats import ShardStats

__all__ = ["ShardExecutor"]

BACKENDS = ("process", "serial")


def _mp_context():
    """Prefer ``fork`` (no module re-import, instant start); fall back
    to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


class ShardExecutor:
    """Partitioned execution of the batch kernels over fixed matrices.

    Parameters
    ----------
    products, customers:
        The matrices the kernels read.  ``customers=None`` is the
        monochromatic convention: customers are the product matrix and
        only one shared-memory segment is published.
    shards:
        Number of partitions (≥ 1).  The pool runs
        ``min(shards, available_cpus())`` workers; extra shards queue.
    backend:
        ``"process"`` (ProcessPoolExecutor over shared memory) or
        ``"serial"`` (same tasks in-process, deterministic oracle).
    partition:
        Row-to-shard strategy, see :mod:`repro.shard.partition`.
    dtype:
        ``"float64"`` (bit-identical to the single-process kernels) or
        ``"float32"`` (half the shared-memory bandwidth, results within
        float32 rounding; the safe-region fold refuses it).
    prune, prune_tile_size:
        When ``prune`` is true, the membership / Λ tasks run the
        filter-refinement kernels of :mod:`repro.kernels.pruned` inside
        each worker, over a per-process product-summary cache (pruning
        and fan-out stack).  Bit-identical either way.
    kernel_counters, prune_counters:
        Parent-side counter bundles (the engine's ``kernels.*`` /
        ``prune.*`` sources).  With telemetry on, every worker's local
        counter deltas are added to them on merge, so fanned-out
        requests account exactly like single-process ones.
    telemetry:
        When true, task payloads ask workers to collect local kernel /
        prune counters and ship snapshots home with each result (see
        :mod:`repro.shard._worker`); merged totals land on
        :attr:`worker_totals`, the parent bundles, and — when ``obs``
        is given — ``shard.worker.<family>.<field>`` registry counters.
        ``None`` (default) auto-enables exactly when there is a place
        to merge into: a counter bundle or an enabled obs bundle.
    """

    def __init__(
        self,
        products: np.ndarray,
        customers: np.ndarray | None = None,
        *,
        shards: int,
        backend: str = "process",
        partition: str = "str",
        dtype: str | np.dtype = np.float64,
        block_size: int = 512,
        prune: bool = False,
        prune_tile_size: int | None = None,
        obs=None,
        stats: ShardStats | None = None,
        kernel_counters=None,
        prune_counters=None,
        telemetry: bool | None = None,
    ):
        if shards < 1:
            raise InvalidParameterError("shards must be a positive integer")
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown shard backend {backend!r}; one of {BACKENDS}"
            )
        if partition not in STRATEGIES:
            raise InvalidParameterError(
                f"unknown shard partition strategy {partition!r}; "
                f"one of {STRATEGIES}"
            )
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise InvalidParameterError(
                f"shard dtype must be float64 or float32, got {dt}"
            )
        # One cast up front: serial and process backends then read the
        # exact same bits, and float32 mode pays its precision cost
        # once instead of per task.
        self._products = np.ascontiguousarray(products, dtype=dt)
        self._mono = customers is None
        self._customers = (
            self._products
            if self._mono
            else np.ascontiguousarray(customers, dtype=dt)
        )
        self.shards = int(shards)
        self.backend = backend
        self.partition = partition
        self.dtype = dt
        self.block_size = int(block_size)
        self.prune = bool(prune)
        self.prune_tile_size = (
            int(prune_tile_size)
            if prune_tile_size is not None
            else self.block_size
        )
        self.stats = stats if stats is not None else ShardStats()
        self._obs = obs
        self._kernel_counters = kernel_counters
        self._prune_counters = prune_counters
        if telemetry is None:
            telemetry = (
                kernel_counters is not None
                or prune_counters is not None
                or bool(getattr(obs, "enabled", False))
            )
        self.telemetry = bool(telemetry)
        #: Lifetime worker-counter totals merged by this executor,
        #: ``{"kernels": {field: int}, "prune": {field: int}}``.
        self.worker_totals: dict[str, dict[str, int]] = {
            "kernels": {},
            "prune": {},
        }
        self._customer_parts = partition_matrix(
            self._customers, self.shards, partition
        )
        self._shard_of = shard_assignment(
            self._customer_parts, self._customers.shape[0]
        )
        self._product_parts = partition_matrix(
            self._products, self.shards, partition
        )
        self._pool: ProcessPoolExecutor | None = None
        self._segments: list[SharedMatrix] = []
        self._closed = False

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise InvalidParameterError("shard executor is closed")
        if self._pool is None:
            shared_products = SharedMatrix(self._products, dtype=self.dtype)
            self._segments.append(shared_products)
            customer_spec = None
            if not self._mono:
                shared_customers = SharedMatrix(
                    self._customers, dtype=self.dtype
                )
                self._segments.append(shared_customers)
                customer_spec = shared_customers.spec
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, min(self.shards, available_cpus())),
                mp_context=_mp_context(),
                initializer=_worker.init_worker,
                initargs=(shared_products.spec, customer_spec),
            )
            self.stats.pool_starts += 1
            self.stats.bytes_shared += sum(s.nbytes for s in self._segments)
        return self._pool

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for segment in self._segments:
            segment.close()
        self._segments = []

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch -------------------------------------------------------

    def _span(self, op: str, live: int):
        if self._obs is None:
            return nullcontext()
        return self._obs.span(
            "engine.shard",
            op=op,
            shards=self.shards,
            live=live,
            backend=self.backend,
        )

    def _dispatch(self, kind: str, payloads: list[dict | None], op: str):
        """Run one payload per shard (``None`` = empty shard, skipped)
        and return the results in shard order (``None`` kept in place).
        With telemetry on, tasks return ``(result, snapshots)``; the
        snapshots are merged here and the bare results returned, so the
        per-call merge code never sees the tuple shape."""
        live = sum(1 for p in payloads if p is not None)
        results: list = [None] * len(payloads)
        with self._span(op, live):
            self.stats.fanouts += 1
            if live:
                if self.backend == "serial":
                    arrays = (self._products, self._customers)
                    for i, payload in enumerate(payloads):
                        if payload is not None:
                            results[i] = _worker.run_task(
                                kind, payload, arrays
                            )
                            self.stats.dispatched += 1
                else:
                    pool = self._ensure_pool()
                    futures = {
                        i: pool.submit(_worker.pool_task, kind, payload)
                        for i, payload in enumerate(payloads)
                        if payload is not None
                    }
                    self.stats.dispatched += len(futures)
                    for i, future in futures.items():
                        results[i] = future.result()
                if self.telemetry:
                    for i, result in enumerate(results):
                        if result is None:
                            continue
                        results[i], snapshots = result
                        self._merge_worker(snapshots)
                self.stats.merged += 1
        return results

    def _merge_worker(self, snapshots: dict) -> None:
        """Fold one worker's counter snapshots into the parent side:
        :attr:`worker_totals`, the engine bundles, and (when obs is
        attached) the ``shard.worker.<family>.<field>`` counters."""
        if not snapshots:
            return
        metrics = getattr(self._obs, "metrics", None)
        bundles = {
            "kernels": self._kernel_counters,
            "prune": self._prune_counters,
        }
        for family, fields in snapshots.items():
            totals = self.worker_totals.setdefault(family, {})
            bundle = bundles.get(family)
            for field, value in fields.items():
                if not value:
                    continue
                totals[field] = totals.get(field, 0) + value
                if bundle is not None:
                    getattr(bundle, field).inc(value)
                if metrics is not None:
                    metrics.counter(
                        f"shard.worker.{family}.{field}",
                        f"worker-merged {family} counter {field}",
                    ).inc(value)
        self.stats.worker_merges += 1

    def _base_payload(self, policy, **extra) -> dict:
        payload = {
            "policy": DominancePolicy(policy).value,
            "block_size": self.block_size,
            "prune": self.prune,
            "prune_tile_size": self.prune_tile_size,
            "telemetry": self.telemetry,
        }
        payload.update(extra)
        return payload

    # -- sharded calls --------------------------------------------------

    def membership_rows(
        self,
        rows: np.ndarray,
        query: np.ndarray,
        policy,
        *,
        self_positions: np.ndarray | None = None,
        rtol: float = 0.0,
        dims: np.ndarray | None = None,
    ) -> np.ndarray:
        """Membership mask of the given customer rows (scatter by the
        customer partition, disjoint-union merge)."""
        rows = np.asarray(rows, dtype=np.int64)
        sp = (
            None
            if self_positions is None
            else np.asarray(self_positions, dtype=np.int64)
        )
        owner = self._shard_of[rows] if rows.size else rows
        payloads: list[dict | None] = []
        locals_: list[np.ndarray | None] = []
        for shard_id in range(self.shards):
            local = np.flatnonzero(owner == shard_id)
            if local.size == 0:
                payloads.append(None)
                locals_.append(None)
                continue
            payloads.append(
                self._base_payload(
                    policy,
                    rows=rows[local],
                    query=query,
                    self_positions=None if sp is None else sp[local],
                    rtol=rtol,
                    dims=dims,
                )
            )
            locals_.append(local)
        results = self._dispatch("membership_rows", payloads, "membership")
        out = np.zeros(rows.shape[0], dtype=bool)
        for local, result in zip(locals_, results):
            if local is not None:
                out[local] = result
        return out

    def membership_points(
        self,
        points: np.ndarray,
        query: np.ndarray,
        policy,
        *,
        self_positions: np.ndarray | None = None,
        rtol: float = 0.0,
        dims: np.ndarray | None = None,
    ) -> np.ndarray:
        """Membership mask of shipped probe points (contiguous split,
        concatenation merge)."""
        points = np.ascontiguousarray(points, dtype=self.dtype)
        sp = (
            None
            if self_positions is None
            else np.asarray(self_positions, dtype=np.int64)
        )
        splits = np.array_split(np.arange(points.shape[0]), self.shards)
        payloads: list[dict | None] = [
            None
            if idx.size == 0
            else self._base_payload(
                policy,
                points=points[idx],
                query=query,
                self_positions=None if sp is None else sp[idx],
                rtol=rtol,
                dims=dims,
            )
            for idx in splits
        ]
        results = self._dispatch("membership_points", payloads, "membership")
        kept = [r for r in results if r is not None]
        if not kept:
            return np.zeros(points.shape[0], dtype=bool)
        return np.concatenate(kept)

    def lambda_rows(
        self,
        rows: np.ndarray,
        query: np.ndarray,
        policy,
        *,
        self_positions: np.ndarray | None = None,
        dims: np.ndarray | None = None,
    ) -> np.ndarray:
        """|Λ| culprit counts of the given customer rows (scatter by the
        customer partition, disjoint-union merge)."""
        rows = np.asarray(rows, dtype=np.int64)
        sp = (
            None
            if self_positions is None
            else np.asarray(self_positions, dtype=np.int64)
        )
        owner = self._shard_of[rows] if rows.size else rows
        payloads: list[dict | None] = []
        locals_: list[np.ndarray | None] = []
        for shard_id in range(self.shards):
            local = np.flatnonzero(owner == shard_id)
            if local.size == 0:
                payloads.append(None)
                locals_.append(None)
                continue
            payloads.append(
                self._base_payload(
                    policy,
                    rows=rows[local],
                    query=query,
                    self_positions=None if sp is None else sp[local],
                    dims=dims,
                )
            )
            locals_.append(local)
        results = self._dispatch("lambda_rows", payloads, "lambda")
        out = np.zeros(rows.shape[0], dtype=np.int64)
        for local, result in zip(locals_, results):
            if local is not None:
                out[local] = result
        return out

    def lambda_products(
        self,
        points: np.ndarray,
        query: np.ndarray,
        policy,
        *,
        self_positions: np.ndarray | None = None,
        dims: np.ndarray | None = None,
    ) -> np.ndarray:
        """|Λ| culprit counts of shipped probe points, sharded over the
        *product* axis: every shard counts its products' contribution to
        every probe, and the partials sum to the full counts."""
        points = np.ascontiguousarray(points, dtype=self.dtype)
        sp = (
            None
            if self_positions is None
            else np.asarray(self_positions, dtype=np.int64)
        )
        n = self._products.shape[0]
        payloads: list[dict | None] = []
        for part in self._product_parts:
            if part.size == 0:
                payloads.append(None)
                continue
            local_sp = None
            if sp is not None:
                # Localise absolute product positions to the shard's
                # rows; a self that lives in another shard becomes -1
                # (no exclusion here — its own shard excludes it).
                inverse = np.full(n, -1, dtype=np.int64)
                inverse[part] = np.arange(part.size, dtype=np.int64)
                local_sp = np.where(sp >= 0, inverse[sp], -1)
            payloads.append(
                self._base_payload(
                    policy,
                    product_rows=part,
                    points=points,
                    query=query,
                    self_positions=local_sp,
                    dims=dims,
                )
            )
        results = self._dispatch("lambda_products", payloads, "lambda")
        out = np.zeros(points.shape[0], dtype=np.int64)
        for result in results:
            if result is not None:
                out += result
        return out

    def safe_region_fold(
        self,
        rows: np.ndarray,
        bounds_lo: np.ndarray,
        bounds_hi: np.ndarray,
        sort_dim: int,
        *,
        self_exclude: bool,
        chunk_size: int,
        weights: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Intersect the anti-dominance regions of the given members,
        sharded: each shard folds a contiguous slice of the member list
        exactly like the sequential fold, and the partial regions are
        intersected pairwise.  Returns ``(lo, hi, info)`` box arrays of
        the final maximal set plus merged fold counters.

        Float64 only — the region algebra's subtractions are not
        associative under float32 rounding, so the bandwidth mode is
        refused rather than silently drifting.
        """
        if self.dtype != np.dtype(np.float64):
            raise InvalidParameterError(
                "the sharded safe-region fold requires dtype=float64"
            )
        from repro.geometry import region_array as _ra

        rows = np.asarray(rows, dtype=np.int64)
        dim = self._products.shape[1]
        splits = np.array_split(rows, self.shards)
        payloads: list[dict | None] = [
            None
            if part.size == 0
            else {
                "rows": part,
                "bounds_lo": np.asarray(bounds_lo, dtype=np.float64),
                "bounds_hi": np.asarray(bounds_hi, dtype=np.float64),
                "sort_dim": int(sort_dim),
                "self_exclude": bool(self_exclude),
                "chunk_size": int(chunk_size),
                "weights": None
                if weights is None
                else np.asarray(weights, dtype=np.float64),
                "telemetry": self.telemetry,
            }
            for part in splits
        ]
        results = self._dispatch("safe_region_chunk", payloads, "safe_region")
        partials = [r for r in results if r is not None]
        info = {
            "members": 0,
            "intersections": 0,
            "boxes_before_simplify": 0,
            "boxes_after_simplify": 0,
            "peak_boxes": 1,
            "early_exit": False,
        }
        if not partials:
            # No members: the safe region is the whole universe.
            return (
                np.asarray(bounds_lo, dtype=np.float64).reshape(1, dim),
                np.asarray(bounds_hi, dtype=np.float64).reshape(1, dim),
                info,
            )
        for partial in partials:
            info["members"] += partial["members"]
            info["intersections"] += partial["intersections"]
            info["boxes_before_simplify"] += partial["boxes_before_simplify"]
            info["boxes_after_simplify"] += partial["boxes_after_simplify"]
            info["peak_boxes"] = max(
                info["peak_boxes"], partial["peak_boxes"]
            )
            info["early_exit"] = info["early_exit"] or partial["early_exit"]
        run_lo, run_hi = partials[0]["lo"], partials[0]["hi"]
        for partial in partials[1:]:
            if run_lo.shape[0] == 0:
                break
            piece_lo, piece_hi = _ra.pairwise_intersect(
                run_lo, run_hi, partial["lo"], partial["hi"]
            )
            info["intersections"] += 1
            info["boxes_before_simplify"] += piece_lo.shape[0]
            run_lo, run_hi = _ra.simplify_arrays(piece_lo, piece_hi)
            info["boxes_after_simplify"] += run_lo.shape[0]
            info["peak_boxes"] = max(info["peak_boxes"], run_lo.shape[0])
        return run_lo, run_hi, info
