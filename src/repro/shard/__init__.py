"""Partitioned (sharded) execution of the batch kernels.

The Dellis-Seeger membership test is per-customer independent, the
Λ-count is a per-(customer, product) sum, and the safe-region fold is
an intersection of per-member regions — all embarrassingly shardable.
This package space-partitions the product/customer matrices into
shards (reusing the STR tiling of :mod:`repro.index.bulkload`), runs
the blocked kernels of :mod:`repro.kernels` per shard — in a
``ProcessPoolExecutor`` over ``multiprocessing.shared_memory`` views
(``backend="process"``) or in-process (``backend="serial"``, the
deterministic oracle) — and merges:

* membership / verification masks — boolean union of disjoint shards;
* Λ-counts — integer sum over product shards;
* safe-region partial folds — region intersection of per-shard folds.

For float64 the merged results are **bit-identical** to the
single-process kernels (property-tested): masks and counts because the
per-row predicate touches only that row's data, the region fold
because box intersection distributes and containment survives further
intersection, so the final set of maximal boxes is order-invariant.
An opt-in float32 mode halves shared-memory bandwidth at the cost of
boundary flips within float32 rounding.

Layering: this package sits beside the kernels — it may import
``repro.kernels`` / ``repro.index`` / ``repro.obs`` (and the geometry
core), never ``repro.plan`` / ``repro.experiments`` / ``repro.viz``.
The planner integration lives in :mod:`repro.plan.operators`.
"""

from repro.shard.executor import ShardExecutor
from repro.shard.partition import partition_matrix, shard_assignment
from repro.shard.sharedmem import MatrixSpec, SharedMatrix, attach_matrix
from repro.shard.stats import ShardStats

__all__ = [
    "MatrixSpec",
    "ShardExecutor",
    "ShardStats",
    "SharedMatrix",
    "attach_matrix",
    "partition_matrix",
    "shard_assignment",
]
