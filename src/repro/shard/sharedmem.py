"""Shared-memory matrices for zero-copy worker access.

The parent publishes each matrix once into a
``multiprocessing.shared_memory`` block; workers attach read-only NumPy
views by name, so shard task payloads carry only row positions and
scalars — never the data.  The parent owns the segment lifecycle
(created in :class:`SharedMatrix`, unlinked in :meth:`SharedMatrix.
close` or by a GC finalizer); workers attach without registering with
the resource tracker, since a tracked child-side handle of a segment
the parent unlinks produces spurious "leaked shared_memory" warnings
at interpreter shutdown.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["MatrixSpec", "SharedMatrix", "attach_matrix"]


@dataclass(frozen=True)
class MatrixSpec:
    """Picklable handle of one published matrix (name + layout)."""

    name: str
    shape: tuple[int, int]
    dtype: str


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker
    registration.

    ``track=`` exists from Python 3.13; on earlier versions attaching
    registers unconditionally, and since forked workers share the
    parent's tracker process, letting several workers register and then
    unregister the same name races the tracker's cache (KeyError noise
    at shutdown).  Suppressing the registration during the attach keeps
    the tracker's view exactly what the parent created."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_matrix(
    spec: MatrixSpec,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """A read-only view of a published matrix plus the handle that must
    outlive it (the caller keeps both; closing the handle invalidates
    the view)."""
    shm = _open_untracked(spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view, shm


class SharedMatrix:
    """One 2-D matrix published into a shared-memory block (parent side).

    ``close()`` is idempotent and also runs from a GC finalizer, so an
    executor dropped without explicit cleanup still unlinks its
    segments instead of leaking ``/dev/shm`` files.
    """

    def __init__(self, matrix: np.ndarray, dtype: str | np.dtype = np.float64):
        arr = np.ascontiguousarray(matrix, dtype=np.dtype(dtype))
        if arr.ndim != 2:
            raise InvalidParameterError(
                f"shared matrix must be 2-D, got shape {arr.shape}"
            )
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        self._view: np.ndarray | None = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self._shm.buf
        )
        self._view[...] = arr
        self.spec = MatrixSpec(
            name=self._shm.name, shape=arr.shape, dtype=arr.dtype.str
        )
        self.nbytes = int(arr.nbytes)
        self._closed = False
        self._finalizer = weakref.finalize(self, _release, self._shm)

    @property
    def array(self) -> np.ndarray:
        """The parent's live view (valid until :meth:`close`)."""
        if self._view is None:
            raise InvalidParameterError("shared matrix is closed")
        return self._view

    def close(self) -> None:
        """Drop the parent view and unlink the segment (idempotent).
        Attached workers keep their mappings until they exit."""
        if self._closed:
            return
        self._closed = True
        self._view = None
        self._finalizer.detach()
        _release(self._shm)

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _release(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view still alive somewhere
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
