"""Row-to-shard assignment strategies.

Every strategy returns a *partition*: a list of exactly ``shards``
disjoint ``int64`` position arrays covering ``range(n)`` (some possibly
empty when ``shards > n``).  The merged kernel results are identical
under any strategy — membership is per-row, Λ-counts are sums, the
region fold is order-invariant — so the choice only moves per-shard
work balance and cache locality:

* ``"rows"`` — contiguous row ranges (cheapest, no spatial locality);
* ``"str"`` — Sort-Tile-Recursive order (the same tiling
  :func:`repro.index.bulkload.str_bulk_load` packs R-tree leaves with)
  cut into contiguous runs, so each shard covers a compact area and the
  membership kernel's early-exit stays as effective as on the full
  matrix;
* ``"grid"`` — rows bucketed by uniform grid cell (lexicographic cell
  order), the :class:`repro.index.grid.GridIndex` analogue.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.bulkload import _tile_positions

__all__ = ["partition_matrix", "shard_assignment"]

STRATEGIES = ("rows", "str", "grid")


def _split_order(order: np.ndarray, shards: int) -> list[np.ndarray]:
    """Cut a row permutation into ``shards`` near-equal contiguous runs."""
    return [
        np.ascontiguousarray(part, dtype=np.int64)
        for part in np.array_split(order, shards)
    ]


def _str_order(points: np.ndarray, shards: int) -> np.ndarray:
    """Row permutation in STR tile order: one sort pass per dimension,
    recursively — spatially compact runs without building any tree."""
    n = points.shape[0]
    positions = np.arange(n, dtype=np.int64)
    capacity = max(1, math.ceil(n / shards))
    tiles = _tile_positions(points, positions, capacity)
    return np.concatenate(tiles) if tiles else positions


def _grid_order(points: np.ndarray, shards: int) -> np.ndarray:
    """Row permutation by lexicographic uniform-grid cell, stable within
    a cell (grid resolution ~ ``shards`` cells total)."""
    n, dim = points.shape
    cells_per_dim = max(1, math.ceil(shards ** (1.0 / dim)))
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    span[span == 0.0] = 1.0
    coords = np.clip(
        ((points - lo) / span * cells_per_dim).astype(np.int64),
        0,
        cells_per_dim - 1,
    )
    codes = coords[:, 0]
    for d in range(1, dim):
        codes = codes * cells_per_dim + coords[:, d]
    return np.argsort(codes, kind="stable").astype(np.int64)


def partition_matrix(
    points: np.ndarray, shards: int, strategy: str = "str"
) -> list[np.ndarray]:
    """Partition the rows of ``points`` into ``shards`` position arrays."""
    if shards < 1:
        raise InvalidParameterError("shards must be a positive integer")
    if strategy not in STRATEGIES:
        raise InvalidParameterError(
            f"unknown shard partition strategy {strategy!r}; "
            f"one of {STRATEGIES}"
        )
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidParameterError(
            f"points must be an (n, d) matrix, got shape {pts.shape}"
        )
    n = pts.shape[0]
    if shards == 1 or n == 0:
        return _split_order(np.arange(n, dtype=np.int64), shards)
    if strategy == "rows":
        order = np.arange(n, dtype=np.int64)
    elif strategy == "str":
        order = _str_order(pts, shards)
    else:
        order = _grid_order(pts, shards)
    return _split_order(order, shards)


def shard_assignment(parts: list[np.ndarray], count: int) -> np.ndarray:
    """Inverse of a partition: the ``(count,)`` row → shard-id map."""
    assignment = np.full(count, -1, dtype=np.int64)
    for shard_id, part in enumerate(parts):
        assignment[part] = shard_id
    if np.any(assignment < 0):
        raise InvalidParameterError(
            "partition does not cover every row of the matrix"
        )
    return assignment
