"""Worker-side shard tasks.

Every task is a top-level picklable function ``(products, customers,
payload) -> result`` over the *full* matrices; the payload carries only
row positions, the query and scalar knobs.  The same functions run in
three places:

* in a ``ProcessPoolExecutor`` worker, where :func:`init_worker`
  attached the matrices from shared memory once per process
  (:func:`pool_task` looks them up);
* in-process through :func:`run_task` (the ``"serial"`` backend — the
  deterministic oracle the process backend is property-tested against);
* in tests, directly.

The kernel calls are exactly the single-process ones, applied to a row
subset — which is why the merged results are bit-identical for float64:
each customer's membership/count depends only on its own row, the
products and the query.

Telemetry: when the payload carries ``"telemetry": True``, each task
threads fresh local :class:`~repro.kernels.membership.KernelCounters`
(and, when pruning, :class:`~repro.prune.counters.PruneCounters`)
through its kernel call and returns ``(result, counter_snapshots)``
instead of the bare result — counters cannot cross the process
boundary live, so their deltas ride home with the result and the
parent :class:`~repro.shard.executor.ShardExecutor` merges them.
Without the flag, the historical bare-result contract holds and the
kernel hot loops stay counter-free.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.config import DominancePolicy
from repro.kernels.membership import (
    KernelCounters,
    batch_lambda_counts,
    batch_window_membership,
)
from repro.kernels.pruned import (
    batch_lambda_counts_pruned,
    batch_window_membership_pruned,
)
from repro.prune.classify import tile_bounds
from repro.prune.counters import PruneCounters
from repro.shard.sharedmem import MatrixSpec, attach_matrix

__all__ = ["init_worker", "pool_task", "run_task"]

#: Process-local attachment state: matrices plus the SharedMemory
#: handles that must stay alive while the views are used.
_STATE: dict = {}

#: Per-process product-summary cache for the pruned tasks: chunk AABBs
#: of the (immutable within one executor generation) product matrix,
#: keyed by (id(matrix), tile_size) with a weakref guard so a recycled
#: id after a matrix is garbage-collected can never serve stale bounds.
_SUMMARIES: dict = {}


def _product_summary(
    products: np.ndarray, tile_size: int
) -> tuple[np.ndarray, np.ndarray]:
    key = (id(products), int(tile_size))
    entry = _SUMMARIES.get(key)
    if entry is not None:
        ref, bounds = entry
        if ref() is products:
            return bounds
    bounds = tile_bounds(products, int(tile_size))
    try:
        ref = weakref.ref(products)
    except TypeError:  # pragma: no cover - non-weakrefable view
        return bounds
    if len(_SUMMARIES) > 8:
        _SUMMARIES.clear()
    _SUMMARIES[key] = (ref, bounds)
    return bounds


def _prune_args(products: np.ndarray, payload: dict) -> dict | None:
    """Pruned-kernel keyword arguments, or ``None`` for the plain path.
    Payloads built by older callers carry no ``prune`` key (off)."""
    if not payload.get("prune"):
        return None
    tile = int(payload.get("prune_tile_size") or payload["block_size"])
    return {
        "tile_size": tile,
        "product_bounds": _product_summary(products, tile),
    }


def _task_counters(
    payload: dict,
) -> tuple[KernelCounters | None, PruneCounters | None]:
    """Fresh per-task counter bundles when the payload asks for
    telemetry (``None, None`` keeps the hot loops counter-free)."""
    if not payload.get("telemetry"):
        return None, None
    prune_counters = PruneCounters() if payload.get("prune") else None
    return KernelCounters(), prune_counters


def _wrap(result, kernel_counters, prune_counters):
    """Attach counter snapshots to a telemetry-mode result."""
    if kernel_counters is None:
        return result
    snapshots = {"kernels": kernel_counters.snapshot()}
    if prune_counters is not None:
        snapshots["prune"] = prune_counters.snapshot()
    return result, snapshots


def init_worker(
    product_spec: MatrixSpec, customer_spec: MatrixSpec | None
) -> None:
    """Pool initializer: attach the published matrices once per worker.
    ``customer_spec=None`` is the monochromatic convention (customers
    are the product matrix)."""
    products, p_shm = attach_matrix(product_spec)
    handles = [p_shm]
    if customer_spec is None:
        customers = products
    else:
        customers, c_shm = attach_matrix(customer_spec)
        handles.append(c_shm)
    _STATE["products"] = products
    _STATE["customers"] = customers
    _STATE["handles"] = handles


def _policy(payload: dict) -> DominancePolicy:
    return DominancePolicy(payload["policy"])


def _dims(payload: dict) -> np.ndarray | None:
    """Preference-support dimensions (``None`` = full support; payloads
    built by older callers carry no ``dims`` key)."""
    return payload.get("dims")


def membership_rows(
    products: np.ndarray, customers: np.ndarray, payload: dict
) -> np.ndarray:
    """Membership/verification mask for one customer-row shard."""
    rows = payload["rows"]
    pruned = _prune_args(products, payload)
    kernel_counters, prune_counters = _task_counters(payload)
    if pruned is not None:
        result = batch_window_membership_pruned(
            products,
            customers[rows],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            rtol=payload["rtol"],
            counters=kernel_counters,
            prune_counters=prune_counters,
            dtype=products.dtype,
            dims=_dims(payload),
            **pruned,
        )
    else:
        result = batch_window_membership(
            products,
            customers[rows],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            rtol=payload["rtol"],
            counters=kernel_counters,
            dtype=products.dtype,
            dims=_dims(payload),
        )
    return _wrap(result, kernel_counters, prune_counters)


def membership_points(
    products: np.ndarray, customers: np.ndarray, payload: dict
) -> np.ndarray:
    """Membership/verification mask for a shipped probe-point block."""
    pruned = _prune_args(products, payload)
    kernel_counters, prune_counters = _task_counters(payload)
    if pruned is not None:
        result = batch_window_membership_pruned(
            products,
            payload["points"],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            rtol=payload["rtol"],
            counters=kernel_counters,
            prune_counters=prune_counters,
            dtype=products.dtype,
            dims=_dims(payload),
            **pruned,
        )
    else:
        result = batch_window_membership(
            products,
            payload["points"],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            rtol=payload["rtol"],
            counters=kernel_counters,
            dtype=products.dtype,
            dims=_dims(payload),
        )
    return _wrap(result, kernel_counters, prune_counters)


def lambda_rows(
    products: np.ndarray, customers: np.ndarray, payload: dict
) -> np.ndarray:
    """|Λ| counts for one customer-row shard (all products)."""
    rows = payload["rows"]
    pruned = _prune_args(products, payload)
    kernel_counters, prune_counters = _task_counters(payload)
    if pruned is not None:
        result = batch_lambda_counts_pruned(
            products,
            customers[rows],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            counters=kernel_counters,
            prune_counters=prune_counters,
            dtype=products.dtype,
            dims=_dims(payload),
            **pruned,
        )
    else:
        result = batch_lambda_counts(
            products,
            customers[rows],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            counters=kernel_counters,
            dtype=products.dtype,
            dims=_dims(payload),
        )
    return _wrap(result, kernel_counters, prune_counters)


def lambda_products(
    products: np.ndarray, customers: np.ndarray, payload: dict
) -> np.ndarray:
    """Partial |Λ| counts of every probe against one *product* shard
    (the parent sums the partials — integer-sum merge).
    ``self_positions`` arrive already localised to the shard's rows."""
    prods = products[payload["product_rows"]]
    kernel_counters, prune_counters = _task_counters(payload)
    if payload.get("prune"):
        # Fresh fancy-indexed subset every call: compute its chunk
        # bounds inline rather than caching by a throwaway id.
        tile = int(payload.get("prune_tile_size") or payload["block_size"])
        result = batch_lambda_counts_pruned(
            prods,
            payload["points"],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            counters=kernel_counters,
            prune_counters=prune_counters,
            dtype=products.dtype,
            dims=_dims(payload),
            tile_size=tile,
        )
    else:
        result = batch_lambda_counts(
            prods,
            payload["points"],
            payload["query"],
            _policy(payload),
            self_positions=payload["self_positions"],
            block_size=payload["block_size"],
            counters=kernel_counters,
            dtype=products.dtype,
            dims=_dims(payload),
        )
    return _wrap(result, kernel_counters, prune_counters)


def safe_region_chunk(
    products: np.ndarray, customers: np.ndarray, payload: dict
) -> dict:
    """Fold one shard's members into a partial safe-region intersection.

    Mirrors the sequential fold of :func:`repro.core.safe_region.
    compute_safe_region` — same staircase construction, same
    ``sr_chunk_size`` chunking with a size-ascending fold and the
    empty-region early exit — over this shard's member subset only.
    The parent intersects the partials; the final set of maximal boxes
    is order-invariant, so the merged region equals the sequential one.
    """
    # Imported lazily: repro.core pulls in the engine (and the plan
    # layer), which this module must not load before it is itself fully
    # importable from the plan operators.
    from repro.core.safe_region import _member_chunks, staircase_boxes
    from repro.geometry import region_array as _ra
    from repro.geometry.box import Box
    from repro.geometry.transform import to_query_space
    from repro.prefs.model import support_dims
    from repro.skyline.dynamic import dynamic_skyline_indices

    if products.dtype != np.float64:
        raise ValueError("the sharded safe-region fold requires float64")
    dim = products.shape[1]
    bounds = Box(payload["bounds_lo"], payload["bounds_hi"])
    sort_dim = int(payload["sort_dim"])
    self_exclude = bool(payload["self_exclude"])
    weights = payload.get("weights")
    dims = support_dims(weights, dim)
    run_lo, run_hi = _ra.boxes_to_arrays(
        [Box(bounds.lo.copy(), bounds.hi.copy())], dim
    )
    intersections = before_simplify = after_simplify = 0
    peak_boxes = 1
    early_exit = False
    for chunk in _member_chunks(payload["rows"], payload["chunk_size"]):
        regions = []
        for position in chunk:
            origin = customers[position]
            exclude = (int(position),) if self_exclude else ()
            dsl = dynamic_skyline_indices(
                products, origin, exclude, weights=weights
            )
            thresholds = (
                to_query_space(products[dsl], origin)
                if dsl.size
                else np.empty((0, dim))
            )
            lo, hi = _ra.boxes_to_arrays(
                staircase_boxes(
                    origin, thresholds, bounds, sort_dim, dims=dims
                ),
                dim,
            )
            regions.append(_ra.simplify_arrays(lo, hi))
        order = sorted(
            range(len(regions)), key=lambda i: (regions[i][0].shape[0], i)
        )
        for i in order:
            member_lo, member_hi = regions[i]
            piece_lo, piece_hi = _ra.pairwise_intersect(
                run_lo, run_hi, member_lo, member_hi
            )
            intersections += 1
            before_simplify += piece_lo.shape[0]
            run_lo, run_hi = _ra.simplify_arrays(piece_lo, piece_hi)
            after_simplify += run_lo.shape[0]
            peak_boxes = max(peak_boxes, run_lo.shape[0])
            if run_lo.shape[0] == 0:
                early_exit = True
                break
        if early_exit:
            break
    result = {
        "lo": run_lo,
        "hi": run_hi,
        "members": len(payload["rows"]),
        "intersections": intersections,
        "boxes_before_simplify": before_simplify,
        "boxes_after_simplify": after_simplify,
        "peak_boxes": peak_boxes,
        "early_exit": early_exit,
    }
    # The fold runs no kernels; a uniform (result, {}) shape keeps the
    # executor's telemetry unpacking task-agnostic.
    if payload.get("telemetry"):
        return result, {}
    return result


_TASKS = {
    "membership_rows": membership_rows,
    "membership_points": membership_points,
    "lambda_rows": lambda_rows,
    "lambda_products": lambda_products,
    "safe_region_chunk": safe_region_chunk,
}


def run_task(kind: str, payload: dict, arrays: tuple) -> object:
    """Execute one shard task against explicitly supplied matrices
    (the serial backend and unit tests)."""
    products, customers = arrays
    return _TASKS[kind](products, customers, payload)


def pool_task(kind: str, payload: dict) -> object:
    """Execute one shard task against the process-local attached
    matrices (the process backend)."""
    return _TASKS[kind](_STATE["products"], _STATE["customers"], payload)
