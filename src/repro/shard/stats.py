"""Counters of the sharded execution layer.

Attached by the engine under ``shard.*`` registry names (see
:mod:`repro.core.engine_obs`), so ``shard.dispatched`` /
``shard.merged`` flow into traced exports next to the kernel and index
counters.  Counting never changes results.
"""

from __future__ import annotations

from repro.obs.stats import CounterBackedStats

__all__ = ["ShardStats"]


class ShardStats(CounterBackedStats):
    """Live counters of one :class:`~repro.shard.executor.ShardExecutor`
    (or one engine's lifetime of them).

    Attributes
    ----------
    fanouts:
        Sharded calls answered (one per executor method invocation).
    dispatched:
        Shard tasks actually sent to a worker (empty shards are skipped,
        so this is ≤ ``fanouts * shards``).
    merged:
        Merge operations performed (one per sharded call that had at
        least one live shard).
    pool_starts:
        Process pools (and their shared-memory segments) created —
        lazily, on the first process-backend dispatch.
    bytes_shared:
        Bytes published into ``multiprocessing.shared_memory`` blocks.
    worker_merges:
        Worker counter snapshots folded into the parent (one per
        telemetry-mode task result; see
        :meth:`~repro.shard.executor.ShardExecutor._merge_worker`).
    """

    _INT_FIELDS = (
        "fanouts",
        "dispatched",
        "merged",
        "pool_starts",
        "bytes_shared",
        "worker_merges",
    )
