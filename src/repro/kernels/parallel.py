"""Chunked parallel mapping for per-customer pre-computation.

The offline passes of the paper — sampled-DSL pre-computation (Section
VI.B.1) and exact anti-dominance-region assembly (Algorithm 3) — are
embarrassingly parallel over customers.  This module provides the one
shared helper: map a function over items in contiguous chunks on a
``concurrent.futures`` thread pool, preserving input order.

Threads (not processes) are deliberate: the per-item work is NumPy-heavy
(ufunc inner loops release the GIL), the spatial indexes are not cheaply
picklable, and results flow straight into caller-owned caches without
serialisation.  ``n_jobs == 1`` short-circuits to a plain loop so the
sequential path stays the oracle.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.exceptions import InvalidParameterError

__all__ = ["available_cpus", "resolve_n_jobs", "parallel_map_chunks"]

T = TypeVar("T")
R = TypeVar("R")

_CPU_CACHE: int | None = None


def available_cpus(refresh: bool = False) -> int:
    """CPUs this process may actually run on, memoized per process.

    ``os.cpu_count()`` reports the machine, not the process: under CPU
    affinity masks or container cgroup limits it oversubscribes workers
    badly.  ``sched_getaffinity`` reflects both (Linux); platforms
    without it fall back to the machine count.

    The answer is cached after the first call — ``DatasetStats.cpus``
    samples it on every plan-cache miss and the fan-out cost term must
    agree with :func:`resolve_n_jobs` on one stable number.  Pass
    ``refresh=True`` after changing the process affinity.
    """
    global _CPU_CACHE
    if _CPU_CACHE is None or refresh:
        count = None
        getaffinity = getattr(os, "sched_getaffinity", None)
        if getaffinity is not None:
            try:
                count = len(getaffinity(0))
            except OSError:  # pragma: no cover - exotic platforms
                count = None
        if count is None:
            count = os.cpu_count() or 1
        _CPU_CACHE = max(1, count)
    return _CPU_CACHE


def resolve_n_jobs(n_jobs: int) -> int:
    """Concrete worker count: ``-1`` means one per *available* CPU
    (affinity/cgroup aware, see :func:`available_cpus`), otherwise >= 1."""
    if n_jobs == -1:
        return available_cpus()
    if n_jobs < 1:
        raise InvalidParameterError(
            f"n_jobs must be a positive integer or -1, got {n_jobs}"
        )
    return n_jobs


def parallel_map_chunks(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: int = 1,
    chunk_size: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` evaluated in contiguous parallel chunks.

    Results are returned in input order regardless of completion order.
    ``chunk_size`` defaults to an even split over the workers (at least
    one item per chunk); larger chunks amortise executor overhead, smaller
    ones balance skewed per-item costs.
    """
    workers = resolve_n_jobs(n_jobs)
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (workers * 4)))
    elif chunk_size < 1:
        raise InvalidParameterError("chunk_size must be a positive integer")
    chunks = [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]

    def run_chunk(chunk: list[T]) -> list[R]:
        return [fn(item) for item in chunk]

    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = pool.map(run_chunk, chunks)
        return [r for chunk_result in results for r in chunk_result]
