"""Filter-refinement variants of the batch membership / Λ kernels.

Same contracts and bit-identical results as the kernels in
:mod:`repro.kernels.membership`; the only difference is a classification
pass over (customer-tile, product-chunk) AABB pairs
(:func:`repro.prune.classify.classify_pairs`) that resolves most pairs
without materialising a blocking matrix:

* a tile whose every chunk classifies *skip* is entirely in ``RSL(q)``
  (no product can enter any of its windows) — zero exact work;
* one *all-blocked* chunk resolves a whole tile to non-members — every
  chunk product blocks every tile customer — provided self-exclusion
  cannot void it (the chunk has ≥ 2 rows, or no tile customer's excluded
  product falls in it; a 1-row chunk that is someone's self product is
  downgraded to *refine*);
* the remaining chunks fall through to the exact blocked kernels,
  preserving the early-exit compaction.

Λ counting needs exact per-pair values, so it only exploits *skip*
(blocked pairs are counted as refined there).

Customer tile AABBs are computed inline per call (probe sets are
arbitrary subsets); product chunk AABBs can be passed in precomputed
(``product_bounds`` — the engine's epoch-versioned
:class:`repro.prune.summaries.PruneSummaries` or a shard worker's local
cache) and must then describe the *same* product matrix at the same
tile width, in the working dtype.

Accounting happens at classification time so the early exits cannot
unbalance the :class:`repro.prune.counters.PruneCounters` invariant
``pairs_skipped + pairs_blocked + pairs_refined == pairs_total``: a
tile resolved *all-blocked* charges **all** its pairs as blocked, a
tile that refines charges its non-skip pairs as refined.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.kernels.membership import (
    DEFAULT_BLOCK_SIZE,
    _VERIFY_RTOL,
    KernelCounters,
    _blocking_matrix,
    _clear_self_entries,
    _prepare,
    _window_bounds,
)
from repro.prune.classify import (
    PAIR_BLOCKED,
    PAIR_SKIP,
    classify_pairs,
    tile_bounds,
    tile_count,
)
from repro.prune.counters import PruneCounters

__all__ = [
    "batch_window_membership_pruned",
    "batch_lambda_counts_pruned",
    "batch_verify_membership_pruned",
]


def _chunk_bounds(
    prods: np.ndarray,
    tile: int,
    product_bounds: tuple[np.ndarray, np.ndarray] | None,
    dims: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Product chunk AABBs at width ``tile`` — validated precomputed
    bounds, or an inline reduceat pass.

    ``dims`` projects precomputed full-dimensional bounds onto the
    preference support: the AABB of the projected points is exactly the
    projection of the full AABB, so the epoch-versioned summaries stay
    reusable under any weight vector."""
    if product_bounds is None:
        return tile_bounds(prods, tile)
    lo, hi = product_bounds
    if dims is not None:
        sel = np.asarray(dims, dtype=np.int64)
        lo = lo[:, sel]
        hi = hi[:, sel]
    expected = (tile_count(prods.shape[0], tile), prods.shape[1])
    if lo.shape != expected or hi.shape != expected:
        raise InvalidParameterError(
            f"product_bounds shape {lo.shape} does not match "
            f"{expected} for n={prods.shape[0]}, tile_size={tile}"
        )
    # Exact cast: the summary is built from the same stored coordinates.
    return (
        np.ascontiguousarray(lo, dtype=prods.dtype),
        np.ascontiguousarray(hi, dtype=prods.dtype),
    )


def _blocked_chunk_safe(
    chunk_index: int, tile: int, n: int, sp: np.ndarray | None
) -> bool:
    """Is resolving the tile via this *all-blocked* chunk sound under
    self-exclusion?  Every chunk row blocks every tile customer, and a
    customer excludes at most one product — so any chunk with ≥ 2 rows
    still blocks after the exclusion.  A 1-row chunk is unsafe only if
    that row is some tile customer's own product."""
    start = chunk_index * tile
    rows = min(tile, n - start)
    if rows >= 2 or sp is None:
        return True
    return not bool(np.any((sp >= start) & (sp < start + rows)))


def _membership_refine(
    prods: np.ndarray,
    block: np.ndarray,
    q: np.ndarray,
    policy: DominancePolicy,
    rtol: float,
    sp: np.ndarray | None,
    chunk: int,
    chunk_indices: np.ndarray,
    counters: KernelCounters | None,
) -> np.ndarray:
    """Exact membership for one tile over a *subset* of product chunks —
    :func:`repro.kernels.membership._membership_block` with the scan
    restricted to the refine-labelled chunks.  Sound because blocker
    existence is order- and subset-independent once the skipped chunks
    are proven empty of blockers."""
    b = block.shape[0]
    lo, hi = _window_bounds(block, q, rtol)
    alive = np.arange(b, dtype=np.int64)
    exhausted = True
    for k in range(chunk_indices.size):
        start = int(chunk_indices[k]) * chunk
        pc = prods[start : start + chunk]
        blocking = _blocking_matrix(
            pc, block[alive], lo[alive], hi[alive], policy
        )
        _clear_self_entries(
            blocking, sp[alive] if sp is not None else None, start
        )
        survivors = alive[~blocking.any(axis=1)]
        if counters is not None:
            counters.product_chunks.inc()
            counters.customers_pruned.inc(int(alive.size - survivors.size))
        alive = survivors
        if alive.size == 0:
            exhausted = k + 1 >= chunk_indices.size
            break
    if counters is not None:
        counters.tiles.inc()
        counters.customers_evaluated.inc(b)
        if not exhausted:
            counters.early_exits.inc()
    members = np.zeros(b, dtype=bool)
    members[alive] = True
    return members


def batch_window_membership_pruned(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rtol: float = 0.0,
    counters: KernelCounters | None = None,
    prune_counters: PruneCounters | None = None,
    tile_size: int | None = None,
    product_bounds: tuple[np.ndarray, np.ndarray] | None = None,
    dtype: str | np.dtype = np.float64,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """Pruned twin of :func:`repro.kernels.membership.
    batch_window_membership` — identical signature plus ``prune_counters``
    (the ``prune.*`` accounting bundle), ``tile_size`` (classification
    tile width, defaulting to ``block_size``) and ``product_bounds``
    (precomputed product chunk AABBs).  Bit-identical output for every
    parameter combination."""
    prods, custs, q, positions = _prepare(
        products, customers, query, self_positions, block_size, dtype,
        dims=dims,
    )
    m = custs.shape[0]
    n = prods.shape[0]
    members = np.empty(m, dtype=bool)
    if m == 0:
        return members
    if n == 0:
        members[:] = True
        return members
    tile = int(tile_size) if tile_size is not None else int(block_size)
    if tile < 1:
        raise InvalidParameterError("tile_size must be a positive integer")
    plo, phi = _chunk_bounds(prods, tile, product_bounds, dims)
    nchunks = plo.shape[0]
    for start in range(0, m, tile):
        block = custs[start : start + tile]
        b = block.shape[0]
        sp = positions[start : start + b] if positions is not None else None
        labels = classify_pairs(
            block.min(axis=0)[None],
            block.max(axis=0)[None],
            plo,
            phi,
            q,
            rtol=rtol,
        )[0]
        if prune_counters is not None:
            prune_counters.pairs_total.inc(nchunks)
        resolved_blocked = False
        for ci in np.flatnonzero(labels == PAIR_BLOCKED):
            if _blocked_chunk_safe(int(ci), tile, n, sp):
                resolved_blocked = True
                break
        if resolved_blocked:
            members[start : start + b] = False
            if prune_counters is not None:
                prune_counters.tiles_all_blocked.inc()
                prune_counters.pairs_blocked.inc(nchunks)
            continue
        refine = np.flatnonzero(labels != PAIR_SKIP)
        if prune_counters is not None:
            prune_counters.pairs_skipped.inc(nchunks - refine.size)
            prune_counters.pairs_refined.inc(refine.size)
        if refine.size == 0:
            members[start : start + b] = True
            if prune_counters is not None:
                prune_counters.tiles_skipped.inc()
            continue
        members[start : start + b] = _membership_refine(
            prods, block, q, policy, rtol, sp, tile, refine, counters
        )
    return members


def batch_lambda_counts_pruned(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    counters: KernelCounters | None = None,
    prune_counters: PruneCounters | None = None,
    tile_size: int | None = None,
    product_bounds: tuple[np.ndarray, np.ndarray] | None = None,
    dtype: str | np.dtype = np.float64,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """Pruned twin of :func:`repro.kernels.membership.batch_lambda_counts`.

    Counting needs exact values for every pair that can intersect a
    window, so only *skip* pairs are elided; *all-blocked* pairs are
    computed exactly (and accounted as refined) — the label proves the
    count is ``b * rows`` but not which rows survive self-exclusion, and
    the exact chunk pass is as cheap as that proof."""
    prods, custs, q, positions = _prepare(
        products, customers, query, self_positions, block_size, dtype,
        dims=dims,
    )
    m = custs.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    if m == 0 or prods.shape[0] == 0:
        return counts
    tile = int(tile_size) if tile_size is not None else int(block_size)
    if tile < 1:
        raise InvalidParameterError("tile_size must be a positive integer")
    plo, phi = _chunk_bounds(prods, tile, product_bounds, dims)
    nchunks = plo.shape[0]
    for start in range(0, m, tile):
        block = custs[start : start + tile]
        b = block.shape[0]
        sp = positions[start : start + b] if positions is not None else None
        labels = classify_pairs(
            block.min(axis=0)[None],
            block.max(axis=0)[None],
            plo,
            phi,
            q,
            rtol=0.0,
        )[0]
        refine = np.flatnonzero(labels != PAIR_SKIP)
        if prune_counters is not None:
            prune_counters.pairs_total.inc(nchunks)
            prune_counters.pairs_skipped.inc(nchunks - refine.size)
            prune_counters.pairs_refined.inc(refine.size)
        if refine.size == 0:
            if prune_counters is not None:
                prune_counters.tiles_skipped.inc()
            continue  # counts stay zero: no product enters any window
        lo, hi = _window_bounds(block, q, rtol=0.0)
        acc = np.zeros(b, dtype=np.int64)
        for k in range(refine.size):
            pstart = int(refine[k]) * tile
            pc = prods[pstart : pstart + tile]
            blocking = _blocking_matrix(pc, block, lo, hi, policy)
            _clear_self_entries(blocking, sp, pstart)
            acc += blocking.sum(axis=1)
            if counters is not None:
                counters.product_chunks.inc()
        if counters is not None:
            counters.tiles.inc()
            counters.customers_evaluated.inc(b)
        counts[start : start + b] = acc
    return counts


def batch_verify_membership_pruned(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.STRICT,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rtol: float = _VERIFY_RTOL,
    counters: KernelCounters | None = None,
    prune_counters: PruneCounters | None = None,
    tile_size: int | None = None,
    product_bounds: tuple[np.ndarray, np.ndarray] | None = None,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """Pruned twin of :func:`repro.kernels.membership.
    batch_verify_membership` — the classifier widens its thresholds by an
    upper bound of the per-customer ``rtol`` slack, so tolerance-aware
    verification prunes soundly too."""
    return batch_window_membership_pruned(
        products,
        customers,
        query,
        policy,
        self_positions=self_positions,
        block_size=block_size,
        rtol=rtol,
        counters=counters,
        prune_counters=prune_counters,
        tile_size=tile_size,
        product_bounds=product_bounds,
        dims=dims,
    )
