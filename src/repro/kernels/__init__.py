"""Vectorised batch kernels for bulk reverse-skyline workloads.

Every multi-customer path in the library — BBRS verification, lost-customer
sweeps, MQP experiment scoring, DSL pre-computation — reduces to evaluating
the Dellis-Seeger window emptiness test for *many* customers against the
same query.  Doing that one customer at a time through the index is a
Python-level loop and dominates MWQ runtime (the paper's Fig. 15); these
kernels evaluate all customers in one broadcasted NumPy pass, tiled over a
configurable block size so the intermediate arrays stay bounded.

* :mod:`repro.kernels.membership` — blocked batch membership / Λ-count /
  tolerance-aware verification kernels;
* :mod:`repro.kernels.pruned` — filter-refinement twins of the same
  kernels, classifying (tile, chunk) AABB pairs via :mod:`repro.prune`
  before touching the exact blocked path;
* :mod:`repro.kernels.parallel` — ``concurrent.futures``-based chunked
  parallel mapping for per-customer pre-computation (sampled DSLs,
  anti-dominance regions).
"""

from repro.kernels.membership import (
    AUTO_BLOCK_BYTES,
    DEFAULT_BLOCK_SIZE,
    KernelCounters,
    auto_block_size,
    batch_lambda_counts,
    batch_verify_membership,
    batch_window_membership,
    resolve_block_size,
)
from repro.kernels.parallel import (
    available_cpus,
    parallel_map_chunks,
    resolve_n_jobs,
)
from repro.kernels.pruned import (
    batch_lambda_counts_pruned,
    batch_verify_membership_pruned,
    batch_window_membership_pruned,
)

__all__ = [
    "AUTO_BLOCK_BYTES",
    "DEFAULT_BLOCK_SIZE",
    "KernelCounters",
    "auto_block_size",
    "available_cpus",
    "batch_window_membership",
    "batch_lambda_counts",
    "batch_verify_membership",
    "batch_window_membership_pruned",
    "batch_lambda_counts_pruned",
    "batch_verify_membership_pruned",
    "parallel_map_chunks",
    "resolve_block_size",
    "resolve_n_jobs",
]
