"""Blocked batch kernels for the Dellis-Seeger membership test.

One customer's membership in ``RSL(q)`` is a window-emptiness test: no
product may be (weakly/strictly) closer to the customer than the query in
every dimension.  The per-customer implementation in
:mod:`repro.skyline.window` issues one index query per customer; the
kernels here evaluate the same predicate for an ``(m, d)`` customer matrix
against the ``(n, d)`` product matrix in one broadcasted pass.

Memory model: customers are processed in tiles of ``block_size`` rows,
products in chunks of the same width, and the dimension axis is
accumulated in a loop, so the live intermediates are
``O(block_size ** 2)`` booleans/floats — never the full ``(m, n, d)``
tensor.  The membership sweep additionally drops customers from a tile as
soon as any product chunk blocks them (an existential test is
order-independent), which collapses the typical cost from ``O(m * n)`` to
little more than one chunk per customer.  ``block_size`` trades peak
memory for fewer NumPy dispatches; any value yields bit-identical results
(property-tested against the per-customer oracle).

Boundary semantics match :func:`repro.skyline.window.window_query_indices`
exactly when ``rtol == 0`` and
:func:`repro.core._verify.verify_membership` when ``rtol`` is the
verification tolerance: the slack scales with the coordinate magnitude of
each customer/query pair, forgiving 1-ulp boundary flips.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_point, as_points
from repro.obs.metrics import Counter

__all__ = [
    "AUTO_BLOCK_BYTES",
    "DEFAULT_BLOCK_SIZE",
    "KernelCounters",
    "auto_block_size",
    "batch_window_membership",
    "batch_lambda_counts",
    "batch_verify_membership",
    "resolve_block_size",
]

DEFAULT_BLOCK_SIZE = 512

# Target working set of one (tile, chunk) sweep step; ~4 MiB sits inside
# every L2/L3 budget this code meets while keeping NumPy dispatch
# overhead amortised over large operands.
AUTO_BLOCK_BYTES = 4 << 20

_VERIFY_RTOL = 1e-12  # Mirrors repro.core._verify.VERIFY_RTOL.


def auto_block_size(dim: int) -> int:
    """Block width for ``kernel_block_size=None``: the largest power of
    two whose per-step working set fits :data:`AUTO_BLOCK_BYTES`.

    One sweep step materialises, per (tile, chunk) cell: the ``dd``
    distance matrix (8 bytes), two boolean accumulators plus the
    comparison temporary (3 bytes), and for each dimension beyond the
    accumulator pair roughly two more transient bytes — ``11 + 2 *
    max(0, d - 2)`` bytes per cell.  The result is clamped to
    ``[128, 2048]`` and rounded *down* to a power of two; block size
    never changes results (property-tested), only the memory/dispatch
    trade."""
    if dim < 1:
        raise InvalidParameterError("dim must be a positive integer")
    per_cell = 11 + 2 * max(0, int(dim) - 2)
    width = int(float(AUTO_BLOCK_BYTES / per_cell) ** 0.5)
    return min(2048, 1 << max(7, width.bit_length() - 1))


def resolve_block_size(block_size: int | None, dim: int) -> int:
    """``block_size`` if given, else the :func:`auto_block_size`
    heuristic for ``dim`` — the single resolution point used by the
    engine, the planner and the shard executor."""
    if block_size is None:
        return auto_block_size(dim)
    return int(block_size)


class KernelCounters:
    """Live counters of the blocked membership sweeps.

    The engine creates one bundle when tracing is on, attaches the
    counters to its registry under ``kernels.*`` names, and passes it to
    every kernel call; ``None`` (the default everywhere) keeps the hot
    loops counter-free.  Counting never changes results — it only makes
    the pruning behaviour (tiles, chunks touched, early exits)
    observable.

    Attributes
    ----------
    tiles:
        Customer tiles processed.
    product_chunks:
        Blocking-matrix evaluations, i.e. (tile, product-chunk) pairs
        actually materialised — the unit of kernel work.
    early_exits:
        Tiles fully resolved before scanning every product chunk.
    customers_evaluated:
        Customer rows entering a sweep.
    customers_pruned:
        Customers dropped by the early-exit compaction (found blocked
        before the product scan finished).
    """

    __slots__ = (
        "tiles",
        "product_chunks",
        "early_exits",
        "customers_evaluated",
        "customers_pruned",
    )

    def __init__(self) -> None:
        self.tiles = Counter("tiles")
        self.product_chunks = Counter("product_chunks")
        self.early_exits = Counter("early_exits")
        self.customers_evaluated = Counter("customers_evaluated")
        self.customers_pruned = Counter("customers_pruned")

    def counters(self) -> dict[str, Counter]:
        return {name: getattr(self, name) for name in self.__slots__}

    def snapshot(self) -> dict[str, int]:
        return {name: int(getattr(self, name).value) for name in self.__slots__}


def _as_matrix(values: np.ndarray, dim: int, dtype: np.dtype) -> np.ndarray:
    """The non-float64 twin of :func:`repro.geometry.point.as_points`:
    same shape/finiteness validation, but coerces to ``dtype`` directly
    (no intermediate float64 copy) so float32 inputs stay zero-copy."""
    arr = np.asarray(values)
    if arr.size == 0:
        return np.empty((0, dim), dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise InvalidParameterError(
            f"points must form an (n, {dim}) matrix, got shape {arr.shape}"
        )
    out = np.ascontiguousarray(arr, dtype=dtype)
    if not np.all(np.isfinite(out)):
        raise InvalidParameterError("points contain non-finite values")
    return out


def _prepare(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    self_positions: np.ndarray | None,
    block_size: int,
    dtype: str | np.dtype = np.float64,
    dims: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    if block_size < 1:
        raise InvalidParameterError("block_size must be a positive integer")
    q = as_point(query)
    dt = np.dtype(dtype)
    if dt == np.float64:
        prods = as_points(products, dim=q.size)
        custs = as_points(customers, dim=q.size)
    else:
        if dt != np.float32:
            raise InvalidParameterError(
                f"kernel dtype must be float64 or float32, got {dt}"
            )
        prods = _as_matrix(products, q.size, dt)
        custs = _as_matrix(customers, q.size, dt)
        q = q.astype(dt)
    if dims is not None:
        # Preference-support projection (see repro.prefs): the window test
        # runs over the support columns only.  Copies keep the sweep's
        # column reads contiguous.
        sel = np.asarray(dims, dtype=np.int64)
        if sel.ndim != 1 or sel.size == 0 or (
            sel.size and (sel.min() < 0 or sel.max() >= q.size)
        ):
            raise InvalidParameterError(
                f"dims must be a non-empty 1-d array of valid column "
                f"positions for dimension {q.size}"
            )
        q = q[sel]
        prods = np.ascontiguousarray(prods[:, sel])
        custs = np.ascontiguousarray(custs[:, sel])
    positions = None
    if self_positions is not None:
        positions = np.asarray(self_positions, dtype=np.int64)
        if positions.shape != (custs.shape[0],):
            raise InvalidParameterError(
                "self_positions must have one entry per customer, "
                f"got shape {positions.shape} for {custs.shape[0]} customers"
            )
        if positions.size and (
            positions.min() < -1 or positions.max() >= prods.shape[0]
        ):
            raise InvalidParameterError(
                "self_positions entries must be -1 or valid product positions"
            )
    return prods, custs, q, positions


def _window_bounds(
    block: np.ndarray, q: np.ndarray, rtol: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-customer ``(lo, hi)`` window thresholds, slack-adjusted.

    A product blocks a customer when its per-dimension distance is
    strictly below ``lo`` everywhere (STRICT), or weakly below ``hi``
    everywhere and strictly below ``lo`` somewhere (WEAK).  With
    ``rtol == 0`` both bounds are the exact window radii.
    """
    radii = np.abs(block - q)  # (b, d)
    if rtol > 0.0:
        scale = np.maximum(
            1.0, np.max(np.abs(block), axis=1, initial=np.max(np.abs(q)))
        )
        slack = (rtol * scale)[:, None]  # (b, 1)
        return radii - slack, radii + slack
    return radii, radii


def _blocking_matrix(
    prods: np.ndarray,
    block: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    policy: DominancePolicy,
) -> np.ndarray:
    """``(b, n)`` boolean matrix: does product ``i`` block customer ``j``?

    The dimension axis is folded in a Python loop (``d`` is small) so the
    live arrays stay two-dimensional.
    """
    b, dim = block.shape
    n = prods.shape[0]
    if policy is DominancePolicy.STRICT:
        blocking = np.ones((b, n), dtype=bool)
        for d in range(dim):
            dd = np.abs(block[:, d, None] - prods[None, :, d])
            blocking &= dd < lo[:, d, None]
        return blocking
    all_le = np.ones((b, n), dtype=bool)
    any_lt = np.zeros((b, n), dtype=bool)
    for d in range(dim):
        dd = np.abs(block[:, d, None] - prods[None, :, d])
        all_le &= dd <= hi[:, d, None]
        any_lt |= dd < lo[:, d, None]
    return all_le & any_lt


def _clear_self_entries(
    blocking: np.ndarray, sp: np.ndarray | None, product_start: int
) -> None:
    """Clear the self-exclusion entry of each row whose excluded product
    falls inside the current product chunk.  ``sp`` holds absolute product
    positions (-1 for none), one per row of ``blocking``."""
    if sp is None:
        return
    local = sp - product_start
    rows = np.flatnonzero((local >= 0) & (local < blocking.shape[1]))
    if rows.size:
        blocking[rows, local[rows]] = False


def _membership_block(
    prods: np.ndarray,
    block: np.ndarray,
    q: np.ndarray,
    policy: DominancePolicy,
    rtol: float,
    sp: np.ndarray | None,
    chunk: int,
    counters: KernelCounters | None = None,
) -> np.ndarray:
    """Membership vector for one customer tile, chunked over products with
    early-exit compaction.

    Membership is an existential test — one blocker anywhere disqualifies
    a customer — so customers already blocked by an earlier product chunk
    are dropped from later ones.  On realistic data most customers are
    blocked within the first chunk, collapsing the effective work from
    ``O(b * n)`` to roughly ``O(b * chunk)`` plus a short tail, while the
    outcome stays bit-identical (blocker existence is order-independent).
    """
    b = block.shape[0]
    n = prods.shape[0]
    lo, hi = _window_bounds(block, q, rtol)
    alive = np.arange(b, dtype=np.int64)
    exhausted = True
    for start in range(0, n, chunk):
        pc = prods[start : start + chunk]
        blocking = _blocking_matrix(
            pc, block[alive], lo[alive], hi[alive], policy
        )
        _clear_self_entries(
            blocking, sp[alive] if sp is not None else None, start
        )
        survivors = alive[~blocking.any(axis=1)]
        if counters is not None:
            counters.product_chunks.inc()
            counters.customers_pruned.inc(int(alive.size - survivors.size))
        alive = survivors
        if alive.size == 0:
            exhausted = start + chunk >= n
            break
    if counters is not None:
        counters.tiles.inc()
        counters.customers_evaluated.inc(b)
        if not exhausted:
            counters.early_exits.inc()
    members = np.zeros(b, dtype=bool)
    members[alive] = True
    return members


def batch_window_membership(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rtol: float = 0.0,
    counters: KernelCounters | None = None,
    dtype: str | np.dtype = np.float64,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """``(m,)`` boolean vector: is each customer in ``RSL(query)``?

    Parameters
    ----------
    products, customers:
        ``(n, d)`` product and ``(m, d)`` customer matrices.
    query:
        The reverse-skyline query point ``q``.
    policy:
        Dominance policy of the window test (see DESIGN.md §2).
    self_positions:
        Optional ``(m,)`` int array giving, per customer row, the product
        row excluded from its own window (monochromatic self-exclusion);
        ``-1`` means no exclusion.  Supports verifying an arbitrary
        candidate subset: pass ``customers[cand]`` with
        ``self_positions=cand``.
    block_size:
        Customer tile and product chunk width; bounds peak memory at
        ``O(block_size ** 2)``.
    rtol:
        Relative boundary tolerance.  ``0`` reproduces the exact window
        test of :func:`repro.skyline.window.window_is_empty`; the
        verification tolerance reproduces
        :func:`repro.core._verify.verify_membership`.
    counters:
        Optional :class:`KernelCounters` incremented in place (tiles,
        chunks, early exits); ``None`` skips all accounting.
    dtype:
        Element type of the sweep.  ``float64`` (default) is the exact
        path; ``float32`` computes windows and distances in single
        precision — float32 inputs stay zero-copy (the sharded layer's
        bandwidth mode) at the cost of possible boundary flips within
        float32 rounding of the float64 answer.
    dims:
        Optional int64 column positions restricting the test to the
        preference-support subspace (:mod:`repro.prefs`); ``None`` is the
        full-dimensional historical path.
    """
    prods, custs, q, positions = _prepare(
        products, customers, query, self_positions, block_size, dtype,
        dims=dims,
    )
    m = custs.shape[0]
    members = np.empty(m, dtype=bool)
    if m == 0:
        return members
    if prods.shape[0] == 0:
        members[:] = True
        return members
    for start in range(0, m, block_size):
        block = custs[start : start + block_size]
        sp = positions[start : start + block.shape[0]] if positions is not None else None
        members[start : start + block.shape[0]] = _membership_block(
            prods, block, q, policy, rtol, sp, chunk=block_size, counters=counters
        )
    return members


def batch_lambda_counts(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    counters: KernelCounters | None = None,
    dtype: str | np.dtype = np.float64,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """``(m,)`` int64 vector of ``|Λ|`` per customer.

    ``Λ`` is the paper's first-aspect explanation — the products inside
    each customer's window (Lemma 1); a zero count is exactly membership.
    Influence-style workloads (how many customers does each product
    block?) are bulk sweeps of these counts.
    """
    prods, custs, q, positions = _prepare(
        products, customers, query, self_positions, block_size, dtype,
        dims=dims,
    )
    m = custs.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    if m == 0 or prods.shape[0] == 0:
        return counts
    for start in range(0, m, block_size):
        block = custs[start : start + block_size]
        sp = positions[start : start + block.shape[0]] if positions is not None else None
        lo, hi = _window_bounds(block, q, rtol=0.0)
        # Counting cannot short-circuit, but chunking the product axis
        # keeps the live intermediates at O(block_size^2) all the same.
        acc = np.zeros(block.shape[0], dtype=np.int64)
        for pstart in range(0, prods.shape[0], block_size):
            pc = prods[pstart : pstart + block_size]
            blocking = _blocking_matrix(pc, block, lo, hi, policy)
            _clear_self_entries(blocking, sp, pstart)
            acc += blocking.sum(axis=1)
            if counters is not None:
                counters.product_chunks.inc()
        if counters is not None:
            counters.tiles.inc()
            counters.customers_evaluated.inc(block.shape[0])
        counts[start : start + block.shape[0]] = acc
    return counts


def batch_verify_membership(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.STRICT,
    self_positions: np.ndarray | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rtol: float = _VERIFY_RTOL,
    counters: KernelCounters | None = None,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """Tolerance-aware batch membership, matching
    :func:`repro.core._verify.verify_membership` bit-for-bit.

    Used by the bulk lost-customer and MQP-scoring sweeps, where answers
    sit exactly on window boundaries and the exact test is one rounding
    error away from flipping.
    """
    return batch_window_membership(
        products,
        customers,
        query,
        policy,
        self_positions=self_positions,
        block_size=block_size,
        rtol=rtol,
        counters=counters,
        dims=dims,
    )
