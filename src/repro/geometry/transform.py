"""Coordinate transforms between the original and query-centred spaces.

Dynamic skylines are plain skylines after mapping every point ``p`` to
``|c - p|`` with the customer ``c`` as origin (Definition 2); these helpers
implement that mapping, its orthant bookkeeping (needed by the BBRS
global-skyline pruning, where only same-orthant points may dominate), and
the window box of the Dellis-Seeger membership test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.point import as_point, as_points

__all__ = ["to_query_space", "orthant_of", "orthants_of", "window_box"]


def to_query_space(points: np.ndarray, origin: Sequence[float]) -> np.ndarray:
    """Map ``points`` to coordinate-wise absolute distances from ``origin``.

    ``f^i(p^i) = |origin^i - p^i|`` — the paper's mapping function.  Accepts a
    single point or an ``(n, d)`` matrix and preserves the input shape.
    """
    o = as_point(origin)
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        return np.abs(as_point(arr, dim=o.size) - o)
    return np.abs(as_points(arr, dim=o.size) - o)


def orthant_of(point: Sequence[float], origin: Sequence[float]) -> int:
    """Orthant index of ``point`` relative to ``origin``.

    Bit ``i`` of the result is set when ``point[i] >= origin[i]``.  Points on
    a boundary hyperplane are assigned to the upper orthant; the BBRS pruning
    only uses orthants conservatively, so tie placement cannot cause a wrong
    answer (candidates are always verified by a window query).
    """
    p = as_point(point)
    o = as_point(origin, dim=p.size)
    bits = (p >= o).astype(np.int64)
    return int(bits @ (1 << np.arange(p.size, dtype=np.int64)))


def orthants_of(points: np.ndarray, origin: Sequence[float]) -> np.ndarray:
    """Vectorised :func:`orthant_of` for an ``(n, d)`` matrix."""
    o = as_point(origin)
    arr = as_points(points, dim=o.size)
    bits = (arr >= o).astype(np.int64)
    return bits @ (1 << np.arange(o.size, dtype=np.int64))


def window_box(center: Sequence[float], query: Sequence[float]) -> Box:
    """The window of the reverse-skyline membership test.

    Centred at ``center`` (a customer) with per-dimension half extent
    ``|center - query|``; a product strictly inside this window dynamically
    dominates ``query`` w.r.t. ``center`` under the STRICT policy, and a
    product weakly inside (and not tying everywhere) does so under WEAK.
    """
    c = as_point(center)
    q = as_point(query, dim=c.size)
    return Box.from_center(c, np.abs(c - q))
