"""Unions of axis-aligned boxes (``BoxRegion``).

The paper represents each dynamic anti-dominance region and the safe region
``SR(q)`` as a collection of (overlapping) rectangles; intersecting two such
collections distributes over the union:

    (r11 + r12) . (r21 + r22) = r11.r21 + r11.r22 + r12.r21 + r12.r22

where ``+`` is union and ``.`` intersection (Section V.B).  ``BoxRegion``
implements exactly this algebra, plus exact measure (area/volume) via
coordinate compression, which Figure 14 needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_point

__all__ = ["BoxRegion"]


class BoxRegion:
    """A (possibly empty) union of closed axis-aligned boxes.

    The representation is not canonical — boxes may overlap, exactly as in
    the paper's rectangle collections — but :meth:`simplify` prunes boxes
    fully contained in a sibling, which keeps the distributed intersections
    of Algorithm 3 tractable.
    """

    def __init__(self, boxes: Iterable[Box] = (), dim: int | None = None) -> None:
        self._boxes: list[Box] = list(boxes)
        if self._boxes:
            first = self._boxes[0].dim
            for box in self._boxes[1:]:
                if box.dim != first:
                    raise DimensionMismatchError(first, box.dim, what="box")
            if dim is not None and first != dim:
                raise DimensionMismatchError(dim, first, what="region")
            self._dim = first
        else:
            self._dim = dim if dim is not None else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, dim: int) -> "BoxRegion":
        return cls((), dim=dim)

    @classmethod
    def single(cls, box: Box) -> "BoxRegion":
        return cls((box,))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def boxes(self) -> tuple[Box, ...]:
        return tuple(self._boxes)

    def is_empty(self) -> bool:
        return not self._boxes

    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __repr__(self) -> str:
        return f"BoxRegion({len(self._boxes)} boxes, dim={self._dim})"

    def contains_point(self, point: Sequence[float], closed: bool = True) -> bool:
        """True when any constituent box contains the point."""
        if self.is_empty():
            return False
        p = as_point(point, dim=self._dim)
        return any(box.contains_point(p, closed=closed) for box in self._boxes)

    def bounding_box(self) -> Box | None:
        """Minimum bounding box of the union, or ``None`` when empty."""
        if self.is_empty():
            return None
        lo = np.min(np.vstack([b.lo for b in self._boxes]), axis=0)
        hi = np.max(np.vstack([b.hi for b in self._boxes]), axis=0)
        return Box(lo, hi)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "BoxRegion") -> "BoxRegion":
        self._check_dim(other)
        return BoxRegion(self._boxes + list(other._boxes), dim=self._dim or other._dim)

    def intersect_box(self, box: Box) -> "BoxRegion":
        """Clip the region to a single box."""
        pieces = [b.intersect(box) for b in self._boxes]
        return BoxRegion([p for p in pieces if p is not None], dim=self._dim).simplify()

    def intersect(self, other: "BoxRegion") -> "BoxRegion":
        """Distributed pairwise intersection of two unions of boxes.

        This is the core operation of Algorithm 3 (safe-region refinement).
        The result is simplified (contained boxes dropped, duplicates merged)
        so repeated refinement does not blow up combinatorially in practice.
        """
        self._check_dim(other)
        pieces: list[Box] = []
        for a in self._boxes:
            for b in other._boxes:
                inter = a.intersect(b)
                if inter is not None:
                    pieces.append(inter)
        return BoxRegion(pieces, dim=self._dim or other._dim).simplify()

    def simplify(self) -> "BoxRegion":
        """Drop duplicate boxes and boxes contained in another box.

        The geometric point set is unchanged; only the representation
        shrinks.  Runs in O(k^2) over the k surviving boxes, sorted by
        volume so big boxes absorb small ones in one pass.
        """
        if len(self._boxes) <= 1:
            return self
        ordered = sorted(self._boxes, key=lambda b: -b.volume())
        kept: list[Box] = []
        for box in ordered:
            if any(other.contains_box(box) for other in kept):
                continue
            kept.append(box)
        return BoxRegion(kept, dim=self._dim)

    # ------------------------------------------------------------------
    # Measure
    # ------------------------------------------------------------------
    def measure(self) -> float:
        """Exact Lebesgue measure of the union (area in 2-D).

        Uses coordinate compression: the union of k boxes partitions space
        into at most ``(2k-1)^d`` grid cells; a cell belongs to the union iff
        its midpoint does.  Exact for any dimension, O(k * (2k)^d) time —
        fine for the region sizes the safe-region construction produces.
        Figure 14 plots this quantity against ``|RSL(q)|``.
        """
        if self.is_empty():
            return 0.0
        boxes = self._boxes
        dim = self._dim
        # Compressed coordinates per axis.
        cuts = []
        for axis in range(dim):
            values = np.unique(
                np.concatenate(
                    [[b.lo[axis] for b in boxes], [b.hi[axis] for b in boxes]]
                )
            )
            cuts.append(values)
        if any(len(c) < 2 for c in cuts):
            return 0.0  # Degenerate along some axis: measure zero.
        lows = np.vstack([b.lo for b in boxes])  # (k, d)
        highs = np.vstack([b.hi for b in boxes])
        return self._measure_recursive(lows, highs, cuts, 0, np.ones(len(boxes), bool))

    def _measure_recursive(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        cuts: list[np.ndarray],
        axis: int,
        active: np.ndarray,
    ) -> float:
        """Sweep one axis at a time, keeping the set of boxes that span the
        current slab, and recurse on the remaining axes."""
        values = cuts[axis]
        total = 0.0
        for left, right in zip(values[:-1], values[1:]):
            mid = (left + right) / 2.0
            spanning = active & (lows[:, axis] <= mid) & (highs[:, axis] >= mid)
            if not spanning.any():
                continue
            width = right - left
            if axis == len(cuts) - 1:
                total += width
            else:
                total += width * self._measure_recursive(
                    lows, highs, cuts, axis + 1, spanning
                )
        return total

    # ------------------------------------------------------------------
    # Geometry used by Algorithm 4
    # ------------------------------------------------------------------
    def nearest_point_to(self, point: Sequence[float]) -> np.ndarray | None:
        """Closest point of the region to ``point`` (L1), or ``None``."""
        if self.is_empty():
            return None
        p = as_point(point, dim=self._dim)
        best: np.ndarray | None = None
        best_dist = np.inf
        for box in self._boxes:
            candidate = box.nearest_point_to(p)
            dist = float(np.sum(np.abs(candidate - p)))
            if dist < best_dist:
                best, best_dist = candidate, dist
        return best

    def corner_points(self) -> np.ndarray:
        """Deduplicated corners of all constituent boxes, ``(m, d)``.

        Algorithm 4 (case C2) evaluates these as the extremal positions of
        the query point inside its safe region.
        """
        if self.is_empty():
            return np.empty((0, self._dim))
        corners = np.vstack([box.corners() for box in self._boxes])
        return np.unique(corners, axis=0)

    def sample_points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` points sampled from the union, box chosen ∝ volume
        (uniform over boxes when all volumes vanish)."""
        if self.is_empty():
            raise InvalidParameterError("cannot sample from an empty region")
        volumes = np.array([b.volume() for b in self._boxes])
        if volumes.sum() > 0:
            probs = volumes / volumes.sum()
        else:
            probs = np.full(len(self._boxes), 1.0 / len(self._boxes))
        counts = rng.multinomial(n, probs)
        chunks = [
            box.sample_points(rng, int(count))
            for box, count in zip(self._boxes, counts)
            if count
        ]
        return np.vstack(chunks) if chunks else np.empty((0, self._dim))

    def _check_dim(self, other: "BoxRegion") -> None:
        if self._boxes and other._boxes and other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, what="region")
