"""Unions of axis-aligned boxes (``BoxRegion``).

The paper represents each dynamic anti-dominance region and the safe region
``SR(q)`` as a collection of (overlapping) rectangles; intersecting two such
collections distributes over the union:

    (r11 + r12) . (r21 + r22) = r11.r21 + r11.r22 + r12.r21 + r12.r22

where ``+`` is union and ``.`` intersection (Section V.B).  ``BoxRegion``
implements exactly this algebra, plus exact measure (area/volume) via
coordinate compression, which Figure 14 needs.

Representation: a ``BoxRegion`` is a thin view over two contiguous
``(k, d)`` float64 corner arrays; all algebra runs through the NumPy
kernels of :mod:`repro.geometry.region_array` (the safe-region hot path),
while :class:`~repro.geometry.box.Box` objects are materialised lazily
only where callers iterate boxes.  The pure-Python reference
implementation survives as :mod:`repro.geometry.region_oracle` and the
two are property-tested to be exactly equivalent.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry import region_array as _ra
from repro.geometry.box import Box
from repro.geometry.point import as_point

__all__ = ["BoxRegion"]


class BoxRegion:
    """A (possibly empty) union of closed axis-aligned boxes.

    The representation is not canonical — boxes may overlap, exactly as in
    the paper's rectangle collections — but :meth:`simplify` prunes boxes
    fully contained in a sibling, which keeps the distributed intersections
    of Algorithm 3 tractable.

    An empty region constructed without an explicit dimension has
    ``dim == 0`` ("dimension not yet known"); it adopts the other
    operand's dimension in :meth:`union` / :meth:`intersect`.  Two regions
    with *known*, different dimensions always refuse to combine, empty or
    not.
    """

    __slots__ = ("_lo", "_hi", "_dim", "_boxes_cache")

    def __init__(self, boxes: Iterable[Box] = (), dim: int | None = None) -> None:
        box_list = list(boxes)
        if box_list:
            first = box_list[0].dim
            for box in box_list[1:]:
                if box.dim != first:
                    raise DimensionMismatchError(first, box.dim, what="box")
            if dim is not None and first != dim:
                raise DimensionMismatchError(dim, first, what="region")
            self._dim = first
        else:
            self._dim = dim if dim is not None else 0
        self._lo, self._hi = _ra.boxes_to_arrays(box_list, self._dim)
        self._boxes_cache: tuple[Box, ...] | None = tuple(box_list) or None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, dim: int) -> "BoxRegion":
        return cls((), dim=dim)

    @classmethod
    def single(cls, box: Box) -> "BoxRegion":
        return cls((box,))

    @classmethod
    def from_arrays(
        cls, lo: np.ndarray, hi: np.ndarray, dim: int | None = None
    ) -> "BoxRegion":
        """Adopt ``(k, d)`` corner arrays without copying or validation
        beyond shape checks (the kernel outputs are valid by construction)."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 2:
            raise InvalidParameterError(
                f"corner arrays must share a (k, d) shape, got {lo.shape} "
                f"and {hi.shape}"
            )
        region = cls.__new__(cls)
        region._lo = lo
        region._hi = hi
        region._dim = int(dim if dim is not None else lo.shape[1])
        region._boxes_cache = None
        if lo.shape[0] and lo.shape[1] != region._dim:
            raise DimensionMismatchError(region._dim, lo.shape[1], what="region")
        return region

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def lo(self) -> np.ndarray:
        """Lower corners, ``(k, d)`` — the array-engine representation."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """Upper corners, ``(k, d)``."""
        return self._hi

    @property
    def boxes(self) -> tuple[Box, ...]:
        if self._boxes_cache is None:
            self._boxes_cache = tuple(
                Box(self._lo[i], self._hi[i]) for i in range(self._lo.shape[0])
            )
        return self._boxes_cache

    def is_empty(self) -> bool:
        return self._lo.shape[0] == 0

    def __len__(self) -> int:
        return self._lo.shape[0]

    def __iter__(self) -> Iterator[Box]:
        return iter(self.boxes)

    def __repr__(self) -> str:
        return f"BoxRegion({len(self)} boxes, dim={self._dim})"

    def contains_point(self, point: Sequence[float], closed: bool = True) -> bool:
        """True when any constituent box contains the point."""
        if self.is_empty():
            return False
        p = as_point(point, dim=self._dim)
        return _ra.contains_point_arrays(self._lo, self._hi, p, closed=closed)

    def contains_points(
        self, points: np.ndarray, closed: bool = True
    ) -> np.ndarray:
        """Vectorised :meth:`contains_point` over an ``(m, d)`` matrix."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or (self._dim and pts.shape[1] != self._dim):
            raise DimensionMismatchError(
                self._dim, pts.shape[-1], what="point matrix"
            )
        return _ra.contains_points_arrays(self._lo, self._hi, pts, closed=closed)

    def bounding_box(self) -> Box | None:
        """Minimum bounding box of the union, or ``None`` when empty."""
        if self.is_empty():
            return None
        return Box(np.min(self._lo, axis=0), np.max(self._hi, axis=0))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "BoxRegion") -> "BoxRegion":
        dim = self._join_dim(other)
        a_lo, a_hi = self._arrays_as(dim)
        b_lo, b_hi = other._arrays_as(dim)
        return BoxRegion.from_arrays(
            np.vstack([a_lo, b_lo]), np.vstack([a_hi, b_hi]), dim=dim
        )

    def intersect_box(self, box: Box) -> "BoxRegion":
        """Clip the region to a single box."""
        lo, hi = _ra.clip_arrays(self._lo, self._hi, box.lo, box.hi)
        lo, hi = _ra.simplify_arrays(lo, hi)
        return BoxRegion.from_arrays(lo, hi, dim=self._dim)

    def intersect(self, other: "BoxRegion") -> "BoxRegion":
        """Distributed pairwise intersection of two unions of boxes.

        This is the core operation of Algorithm 3 (safe-region refinement):
        one broadcasted clip over all box pairs plus empty-mask compaction.
        The result is simplified (contained boxes dropped, duplicates
        merged) so repeated refinement does not blow up combinatorially.
        """
        dim = self._join_dim(other)
        a_lo, a_hi = self._arrays_as(dim)
        b_lo, b_hi = other._arrays_as(dim)
        lo, hi = _ra.pairwise_intersect(a_lo, a_hi, b_lo, b_hi)
        lo, hi = _ra.simplify_arrays(lo, hi)
        return BoxRegion.from_arrays(lo, hi, dim=dim)

    def simplify(self) -> "BoxRegion":
        """Drop duplicate boxes and boxes contained in another box.

        The geometric point set is unchanged; only the representation
        shrinks.  One vectorised containment-matrix pass over the boxes
        stably sorted by decreasing volume, so big boxes absorb small ones.
        """
        if len(self) <= 1:
            return self
        lo, hi = _ra.simplify_arrays(self._lo, self._hi)
        return BoxRegion.from_arrays(lo, hi, dim=self._dim)

    # ------------------------------------------------------------------
    # Measure
    # ------------------------------------------------------------------
    def measure(self) -> float:
        """Exact Lebesgue measure of the union (area in 2-D).

        Uses coordinate compression: the union of k boxes partitions space
        into at most ``(2k-1)^d`` grid cells; a cell belongs to the union iff
        its midpoint does.  Exact for any dimension; the spanning tests are
        vectorised per axis (one boolean matmul for the final two axes).
        Figure 14 plots this quantity against ``|RSL(q)|``.
        """
        return _ra.measure_arrays(self._lo, self._hi)

    # ------------------------------------------------------------------
    # Geometry used by Algorithm 4
    # ------------------------------------------------------------------
    def nearest_point_to(self, point: Sequence[float]) -> np.ndarray | None:
        """Closest point of the region to ``point`` (L1), or ``None``."""
        if self.is_empty():
            return None
        p = as_point(point, dim=self._dim)
        return _ra.nearest_point_arrays(self._lo, self._hi, p)

    def corner_points(self) -> np.ndarray:
        """Deduplicated corners of all constituent boxes, ``(m, d)``.

        Algorithm 4 (case C2) evaluates these as the extremal positions of
        the query point inside its safe region.
        """
        if self.is_empty():
            return np.empty((0, self._dim))
        return _ra.corner_points_arrays(self._lo, self._hi)

    def sample_points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` points sampled from the union, box chosen ∝ volume
        (uniform over boxes when all volumes vanish)."""
        if self.is_empty():
            raise InvalidParameterError("cannot sample from an empty region")
        return _ra.sample_points_arrays(self._lo, self._hi, rng, n)

    def _arrays_as(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """The corner arrays reshaped for dimension ``dim`` (only an empty
        dim-unknown region ever needs the reshape)."""
        if self._lo.shape[1] == dim:
            return self._lo, self._hi
        return _ra.empty_arrays(dim)

    def _join_dim(self, other: "BoxRegion") -> int:
        """Common dimension of the two operands.

        A region with ``dim == 0`` (empty, dimension unknown) adopts the
        other operand's dimension; two known, different dimensions raise —
        even when one operand is empty — so the former reliance on the
        ``or`` fallback in :meth:`union` cannot silently mix dimensions.
        """
        if self._dim and other._dim and self._dim != other._dim:
            raise DimensionMismatchError(self._dim, other._dim, what="region")
        return self._dim or other._dim

    def _check_dim(self, other: "BoxRegion") -> None:
        self._join_dim(other)
