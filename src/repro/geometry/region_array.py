"""Array-backed kernels for the box-union region algebra.

A region (a union of ``k`` closed axis-aligned boxes in ``d`` dimensions)
is represented as a pair of contiguous ``(k, d)`` float64 arrays — the
lower and upper corners.  Every operation :class:`~repro.geometry.region.
BoxRegion` needs on the safe-region hot path (Algorithm 3's distributed
intersection, containment pruning, exact measure, point containment) is
implemented here as a NumPy kernel over those arrays, replacing the
object-per-box nested Python loops of the seed implementation.

Equivalence contract
--------------------
Each kernel is *exactly* equivalent — same surviving boxes, in the same
order, and bit-identical measure — to the pure-Python reference kept in
:mod:`repro.geometry.region_oracle`:

* :func:`pairwise_intersect` enumerates pieces in the same a-major /
  b-minor order as the oracle's nested loop and keeps the same non-empty
  pieces (touching boxes intersect in a degenerate box, which is kept);
* :func:`simplify_arrays` reproduces the oracle's stable
  volume-descending sweep.  The oracle drops a box when a previously
  *kept* box contains it; because box containment is transitive and the
  sweep is ordered, that is equivalent to "contained in *any* earlier box
  of the sorted order", which vectorises to one ``(k, k)`` containment
  matrix;
* :func:`measure_arrays` runs the same coordinate-compression sweep in
  the same slab order with the same Python-float accumulation, so the
  result is bit-identical, while the per-slab spanning tests and the
  2-D covered-cell grid are computed vectorised.

The property tests in ``tests/properties/test_region_array_properties.py``
assert this contract on random box unions (d = 2..4, degenerate boxes
included), and CI asserts exact area agreement on every push.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import product as _iterproduct
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.box import Box

__all__ = [
    "boxes_to_arrays",
    "empty_arrays",
    "pairwise_intersect",
    "clip_arrays",
    "simplify_arrays",
    "measure_arrays",
    "contains_point_arrays",
    "contains_points_arrays",
    "nearest_point_arrays",
    "corner_points_arrays",
    "sample_points_arrays",
    "observe_region_ops",
]


class _RegionMetrics:
    """Counters a registry lends to this module while observation is on."""

    __slots__ = (
        "intersect_calls",
        "boxes_created",
        "simplify_calls",
        "boxes_pruned",
        "measure_calls",
    )

    def __init__(self, registry) -> None:
        self.intersect_calls = registry.counter(
            "region.intersect_calls", "pairwise_intersect kernel invocations"
        )
        self.boxes_created = registry.counter(
            "region.boxes_created", "non-empty pieces produced by intersections"
        )
        self.simplify_calls = registry.counter(
            "region.simplify_calls", "containment-pruning sweeps"
        )
        self.boxes_pruned = registry.counter(
            "region.boxes_pruned", "boxes dropped by containment pruning"
        )
        self.measure_calls = registry.counter(
            "region.measure_calls", "exact Lebesgue-measure evaluations"
        )


# Module-level sink: None keeps the kernels entirely counter-free (the
# common case); `observe_region_ops` installs a bundle for one scope.
_METRICS: _RegionMetrics | None = None


@contextmanager
def observe_region_ops(registry) -> Iterator[None]:
    """Count kernel activity into ``registry`` within this context.

    ``registry`` is any object with a ``counter(name, help) -> Counter``
    method (a :class:`repro.obs.metrics.MetricsRegistry`); counters are
    created under ``region.*`` names.  The previous sink is restored on
    exit, so scopes nest.  The kernels are process-global, so observation
    is too — don't interleave traced and untraced engines across threads.
    """
    global _METRICS
    previous = _METRICS
    _METRICS = _RegionMetrics(registry)
    try:
        yield
    finally:
        _METRICS = previous


def empty_arrays(dim: int) -> tuple[np.ndarray, np.ndarray]:
    """The ``(0, dim)`` lo/hi pair of an empty region."""
    return (
        np.empty((0, dim), dtype=np.float64),
        np.empty((0, dim), dtype=np.float64),
    )


def boxes_to_arrays(
    boxes: Iterable[Box], dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack :class:`Box` corners into contiguous ``(k, d)`` arrays."""
    boxes = list(boxes)
    if not boxes:
        return empty_arrays(dim)
    lo = np.ascontiguousarray(np.vstack([b.lo for b in boxes]), dtype=np.float64)
    hi = np.ascontiguousarray(np.vstack([b.hi for b in boxes]), dtype=np.float64)
    return lo, hi


def pairwise_intersect(
    a_lo: np.ndarray,
    a_hi: np.ndarray,
    b_lo: np.ndarray,
    b_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All non-empty pairwise intersections of two box arrays.

    The distributed product of Algorithm 3:

        (r11 + r12) . (r21 + r22) = r11.r21 + r11.r22 + r12.r21 + r12.r22

    computed as one broadcasted clip over the ``(ka, kb, d)`` cube plus an
    empty-mask compaction.  Pieces come out in a-major, b-minor order —
    the oracle's nested-loop order — and degenerate (zero-extent) pieces
    from touching boxes are kept, exactly like :meth:`Box.intersect`.
    """
    ka, dim = a_lo.shape
    kb = b_lo.shape[0]
    if ka == 0 or kb == 0:
        return empty_arrays(dim)
    lo = np.maximum(a_lo[:, None, :], b_lo[None, :, :])
    hi = np.minimum(a_hi[:, None, :], b_hi[None, :, :])
    keep = np.all(lo <= hi, axis=2).ravel()
    flat_lo = lo.reshape(ka * kb, dim)
    flat_hi = hi.reshape(ka * kb, dim)
    idx = np.flatnonzero(keep)
    if _METRICS is not None:
        _METRICS.intersect_calls.inc()
        _METRICS.boxes_created.inc(int(idx.size))
    return (
        np.ascontiguousarray(flat_lo[idx]),
        np.ascontiguousarray(flat_hi[idx]),
    )


def clip_arrays(
    lo: np.ndarray,
    hi: np.ndarray,
    box_lo: np.ndarray,
    box_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Clip every box of the region to a single box, dropping empties."""
    if lo.shape[0] == 0:
        return empty_arrays(lo.shape[1])
    new_lo = np.maximum(lo, box_lo[None, :])
    new_hi = np.minimum(hi, box_hi[None, :])
    keep = np.flatnonzero(np.all(new_lo <= new_hi, axis=1))
    return (
        np.ascontiguousarray(new_lo[keep]),
        np.ascontiguousarray(new_hi[keep]),
    )


def simplify_arrays(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate boxes and boxes contained in another box.

    Vectorised containment pruning equivalent to the oracle's sweep: boxes
    are stably sorted by decreasing volume, the full ``(k, k)`` pairwise
    containment matrix is built in one shot, and box *i* of the sorted
    order is dropped iff some earlier box *j < i* contains it (equal boxes
    keep their first occurrence).  Survivors stay in volume-descending
    order, matching the oracle's output exactly.
    """
    k = lo.shape[0]
    if k <= 1:
        if _METRICS is not None:
            _METRICS.simplify_calls.inc()
        return lo, hi
    volumes = np.prod(hi - lo, axis=1)
    order = np.argsort(-volumes, kind="stable")
    s_lo = lo[order]
    s_hi = hi[order]
    # contained[j, i]: sorted box i lies inside sorted box j.
    contained = np.all(s_lo[None, :, :] >= s_lo[:, None, :], axis=2) & np.all(
        s_hi[None, :, :] <= s_hi[:, None, :], axis=2
    )
    earlier = np.arange(k)[:, None] < np.arange(k)[None, :]  # j < i
    dropped = np.any(contained & earlier, axis=0)
    keep = np.flatnonzero(~dropped)
    if _METRICS is not None:
        _METRICS.simplify_calls.inc()
        _METRICS.boxes_pruned.inc(int(k - keep.size))
    return (
        np.ascontiguousarray(s_lo[keep]),
        np.ascontiguousarray(s_hi[keep]),
    )


def contains_point_arrays(
    lo: np.ndarray, hi: np.ndarray, point: np.ndarray, closed: bool = True
) -> bool:
    """True when any box of the region contains ``point``."""
    if lo.shape[0] == 0:
        return False
    if closed:
        inside = (point >= lo) & (point <= hi)
    else:
        inside = (point > lo) & (point < hi)
    return bool(np.any(np.all(inside, axis=1)))


def contains_points_arrays(
    lo: np.ndarray, hi: np.ndarray, points: np.ndarray, closed: bool = True
) -> np.ndarray:
    """Vectorised containment of an ``(m, d)`` point matrix: ``(m,)`` bool."""
    m = points.shape[0]
    if lo.shape[0] == 0:
        return np.zeros(m, dtype=bool)
    if closed:
        inside = (points[:, None, :] >= lo[None, :, :]) & (
            points[:, None, :] <= hi[None, :, :]
        )
    else:
        inside = (points[:, None, :] > lo[None, :, :]) & (
            points[:, None, :] < hi[None, :, :]
        )
    return np.any(np.all(inside, axis=2), axis=1)


def nearest_point_arrays(
    lo: np.ndarray, hi: np.ndarray, point: np.ndarray
) -> np.ndarray | None:
    """Closest point of the region to ``point`` (L1), or ``None`` if empty.

    Clamping is vectorised over all boxes; ties pick the first box in
    array order, the same winner as the oracle's sequential scan.
    """
    if lo.shape[0] == 0:
        return None
    clipped = np.clip(point[None, :], lo, hi)
    dists = np.sum(np.abs(clipped - point[None, :]), axis=1)
    return clipped[int(np.argmin(dists))].copy()


def corner_points_arrays(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Deduplicated corners of all boxes as an ``(m, d)`` matrix."""
    k, dim = lo.shape
    if k == 0:
        return np.empty((0, dim))
    # (2^d, d) selection patterns in the same lo-first order as
    # Box.corners(); the final np.unique sorts lexicographically anyway.
    patterns = np.array(list(_iterproduct((0, 1), repeat=dim)), dtype=bool)
    corners = np.where(patterns[None, :, :], hi[:, None, :], lo[:, None, :])
    return np.unique(corners.reshape(k * patterns.shape[0], dim), axis=0)


def measure_arrays(lo: np.ndarray, hi: np.ndarray) -> float:
    """Exact Lebesgue measure of the union via coordinate compression.

    Bit-identical to the oracle's recursive sweep: slabs are visited in
    the same sorted order and widths accumulate through the same sequence
    of Python-float additions.  What is vectorised is the expensive part —
    the per-axis slab-spanning masks (and, for the final two axes, the
    full covered-cell grid via one boolean matmul).
    """
    k, dim = lo.shape
    if _METRICS is not None:
        _METRICS.measure_calls.inc()
    if k == 0:
        return 0.0
    cuts = [np.unique(np.concatenate([lo[:, a], hi[:, a]])) for a in range(dim)]
    if any(c.size < 2 for c in cuts):
        return 0.0  # Degenerate along some axis: measure zero.
    spans: list[np.ndarray] = []
    widths: list[np.ndarray] = []
    for a, values in enumerate(cuts):
        mids = (values[:-1] + values[1:]) / 2.0
        spans.append(
            (lo[:, a][:, None] <= mids[None, :])
            & (hi[:, a][:, None] >= mids[None, :])
        )
        widths.append(values[1:] - values[:-1])
    return _measure_recursive(spans, widths, 0, np.ones(k, dtype=bool))


def _measure_recursive(
    spans: list[np.ndarray],
    widths: list[np.ndarray],
    axis: int,
    active: np.ndarray,
) -> float:
    if axis >= len(spans) - 2:
        return _measure_last_axes(spans, widths, axis, active)
    total = 0.0
    span = spans[axis]
    width = widths[axis]
    for j in range(span.shape[1]):
        spanning = active & span[:, j]
        if not spanning.any():
            continue
        total += float(width[j]) * _measure_recursive(
            spans, widths, axis + 1, spanning
        )
    return total


def _measure_last_axes(
    spans: list[np.ndarray],
    widths: list[np.ndarray],
    axis: int,
    active: np.ndarray,
) -> float:
    """Measure of the final one or two axes for the active box subset."""
    if axis == len(spans) - 1:
        covered = np.any(spans[axis] & active[:, None], axis=0)
        total = 0.0
        width = widths[axis]
        for j in np.flatnonzero(covered):
            total += float(width[j])
        return total
    # Two axes left: one uint8 matmul yields the covered-cell grid.
    span_a = (spans[axis] & active[:, None]).astype(np.uint8)
    span_b = spans[axis + 1].astype(np.uint8)
    covered = (span_a.T @ span_b) > 0  # (cells_a, cells_b)
    width_a = widths[axis]
    width_b = widths[axis + 1]
    total = 0.0
    for i in np.flatnonzero(np.any(covered, axis=1)):
        inner = 0.0
        for j in np.flatnonzero(covered[i]):
            inner += float(width_b[j])
        total += float(width_a[i]) * inner
    return total


def sample_points_arrays(
    lo: np.ndarray,
    hi: np.ndarray,
    rng: np.random.Generator,
    n: int,
) -> np.ndarray:
    """``n`` points sampled from the union, box chosen proportionally to
    volume (uniform over boxes when all volumes vanish).  Draws from the
    generator in the same order as the oracle, so identical seeds yield
    identical samples."""
    k, dim = lo.shape
    volumes = np.prod(hi - lo, axis=1)
    if volumes.sum() > 0:
        probs = volumes / volumes.sum()
    else:
        probs = np.full(k, 1.0 / k)
    counts = rng.multinomial(n, probs)
    chunks = [
        rng.uniform(lo[i], hi[i], size=(int(count), dim))
        for i, count in enumerate(counts)
        if count
    ]
    return np.vstack(chunks) if chunks else np.empty((0, dim))
