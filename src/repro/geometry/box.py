"""Axis-aligned hyper-rectangles (``Box``).

A box is stored as its lower-left and upper-right corner (the paper's
rectangle representation, Fig. 10(b)).  Boxes are closed sets; the STRICT
dominance policy makes closed boundaries safe (DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as _iterproduct
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo, hi]`` in d dimensions.

    Degenerate boxes (``lo == hi`` along some axes) are allowed: the safe
    region frequently degenerates to the query point itself.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        lo_arr = as_point(lo)
        hi_arr = as_point(hi, dim=lo_arr.size)
        if np.any(lo_arr > hi_arr):
            raise InvalidParameterError(
                f"box lower corner must not exceed upper corner: {lo_arr} > {hi_arr}"
            )
        lo_arr.flags.writeable = False
        hi_arr.flags.writeable = False
        object.__setattr__(self, "lo", lo_arr)
        object.__setattr__(self, "hi", hi_arr)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: Sequence[float], half_extent: Sequence[float]) -> "Box":
        """Box centred at ``center`` with per-dimension half extents.

        This is the construction of the anti-dominance rectangles: centred
        at the customer point with extents equal to transformed distances.
        """
        c = as_point(center)
        h = as_point(half_extent, dim=c.size)
        if np.any(h < 0):
            raise InvalidParameterError("half extents must be non-negative")
        return cls(c - h, c + h)

    @classmethod
    def from_points(cls, a: Sequence[float], b: Sequence[float]) -> "Box":
        """Smallest box containing the two points (corners in any order)."""
        pa = as_point(a)
        pb = as_point(b, dim=pa.size)
        return cls(np.minimum(pa, pb), np.maximum(pa, pb))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.size

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extent(self) -> np.ndarray:
        """Side lengths per dimension."""
        return self.hi - self.lo

    def volume(self) -> float:
        """Lebesgue measure (area in 2-D); 0 for degenerate boxes."""
        return float(np.prod(self.extent))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion)."""
        return float(np.sum(self.extent))

    def is_degenerate(self) -> bool:
        return bool(np.any(self.extent == 0))

    def contains_point(self, point: Sequence[float], closed: bool = True) -> bool:
        """Membership test; ``closed=False`` tests the open interior."""
        p = as_point(point, dim=self.dim)
        if closed:
            return bool(np.all(p >= self.lo) and np.all(p <= self.hi))
        return bool(np.all(p > self.lo) and np.all(p < self.hi))

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies entirely inside this (closed) box."""
        self._check_dim(other)
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Box") -> bool:
        """True when the closed boxes share at least one point."""
        self._check_dim(other)
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def intersect(self, other: "Box") -> "Box | None":
        """The intersection box, or ``None`` when disjoint.

        Touching boxes intersect in a degenerate (zero-volume) box, which is
        still meaningful for us: a safe region may legitimately be a line
        segment or a single point.
        """
        if not self.intersects(other):
            return None
        return Box(np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi))

    def union_bound(self, other: "Box") -> "Box":
        """Minimum bounding box of the two boxes (R-tree MBR union)."""
        self._check_dim(other)
        return Box(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def overlap_volume(self, other: "Box") -> float:
        """Volume of the intersection (0 when disjoint)."""
        inter = self.intersect(other)
        return 0.0 if inter is None else inter.volume()

    # ------------------------------------------------------------------
    # Geometry used by the why-not algorithms
    # ------------------------------------------------------------------
    def nearest_point_to(self, point: Sequence[float]) -> np.ndarray:
        """Closest point of the (closed) box to ``point``.

        Used by Algorithm 4 to pick the cheapest relocation of the query
        point inside each overlap rectangle: for an axis-aligned box the L1-
        and L2-nearest points coincide and are obtained by clamping.
        """
        p = as_point(point, dim=self.dim)
        return np.clip(p, self.lo, self.hi)

    def min_l1_distance(self, point: Sequence[float]) -> float:
        """L1 distance from ``point`` to the box (0 when inside)."""
        p = as_point(point, dim=self.dim)
        return float(np.sum(np.maximum(0.0, np.maximum(self.lo - p, p - self.hi))))

    def corners(self) -> np.ndarray:
        """All ``2^d`` corner points as an ``(2^d, d)`` matrix.

        Algorithm 4 collects the corners of the safe-region rectangles as the
        candidate positions maximising the movement of ``q`` toward ``c_t``.
        """
        choices = [(self.lo[i], self.hi[i]) for i in range(self.dim)]
        return np.array(list(_iterproduct(*choices)), dtype=np.float64)

    def clip_to(self, bounds: "Box") -> "Box | None":
        """Intersection with a bounding universe (alias of :meth:`intersect`)."""
        return self.intersect(bounds)

    def sample_points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` points uniformly sampled from the box (degenerate axes give
        the single coordinate).  Used by property tests of Lemma 2."""
        return rng.uniform(self.lo, self.hi, size=(n, self.dim))

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def approx_equals(self, other: "Box", tol: float = 1e-9) -> bool:
        self._check_dim(other)
        return bool(
            np.allclose(self.lo, other.lo, atol=tol)
            and np.allclose(self.hi, other.hi, atol=tol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __iter__(self) -> Iterator[np.ndarray]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:
        lo = ", ".join(f"{v:g}" for v in self.lo)
        hi = ", ".join(f"{v:g}" for v in self.hi)
        return f"Box([{lo}], [{hi}])"

    def _check_dim(self, other: "Box") -> None:
        if other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, what="box")
