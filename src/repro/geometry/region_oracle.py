"""Pure-Python reference implementation of the box-union algebra.

This is the seed's object-per-box ``BoxRegion`` preserved verbatim as
``OracleBoxRegion``: nested-loop pairwise intersection, O(k²) containment
pruning, and the recursive coordinate-compression measure.  It exists so
the array-backed engine (:mod:`repro.geometry.region_array`) has an
independent oracle to be property-tested and benchmarked against —
``tests/properties/test_region_array_properties.py`` asserts the two
produce the same surviving boxes in the same order and bit-identical
measures, and ``benchmarks/bench_safe_region.py`` reports the speedup.

Do not use this class on hot paths; use
:class:`repro.geometry.region.BoxRegion`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_point

__all__ = ["OracleBoxRegion"]


class OracleBoxRegion:
    """The pre-array-engine union-of-boxes implementation (reference)."""

    def __init__(self, boxes: Iterable[Box] = (), dim: int | None = None) -> None:
        self._boxes: list[Box] = list(boxes)
        if self._boxes:
            first = self._boxes[0].dim
            for box in self._boxes[1:]:
                if box.dim != first:
                    raise DimensionMismatchError(first, box.dim, what="box")
            if dim is not None and first != dim:
                raise DimensionMismatchError(dim, first, what="region")
            self._dim = first
        else:
            self._dim = dim if dim is not None else 0

    @classmethod
    def empty(cls, dim: int) -> "OracleBoxRegion":
        return cls((), dim=dim)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def boxes(self) -> tuple[Box, ...]:
        return tuple(self._boxes)

    def is_empty(self) -> bool:
        return not self._boxes

    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __repr__(self) -> str:
        return f"OracleBoxRegion({len(self._boxes)} boxes, dim={self._dim})"

    def contains_point(self, point: Sequence[float], closed: bool = True) -> bool:
        if self.is_empty():
            return False
        p = as_point(point, dim=self._dim)
        return any(box.contains_point(p, closed=closed) for box in self._boxes)

    def union(self, other: "OracleBoxRegion") -> "OracleBoxRegion":
        self._check_dim(other)
        return OracleBoxRegion(
            self._boxes + list(other._boxes), dim=self._dim or other._dim
        )

    def intersect_box(self, box: Box) -> "OracleBoxRegion":
        pieces = [b.intersect(box) for b in self._boxes]
        return OracleBoxRegion(
            [p for p in pieces if p is not None], dim=self._dim
        ).simplify()

    def intersect(self, other: "OracleBoxRegion") -> "OracleBoxRegion":
        """Distributed pairwise intersection, one Python loop per pair."""
        self._check_dim(other)
        pieces: list[Box] = []
        for a in self._boxes:
            for b in other._boxes:
                inter = a.intersect(b)
                if inter is not None:
                    pieces.append(inter)
        return OracleBoxRegion(pieces, dim=self._dim or other._dim).simplify()

    def simplify(self) -> "OracleBoxRegion":
        """O(k²) containment sweep over boxes sorted by decreasing volume."""
        if len(self._boxes) <= 1:
            return self
        ordered = sorted(self._boxes, key=lambda b: -b.volume())
        kept: list[Box] = []
        for box in ordered:
            if any(other.contains_box(box) for other in kept):
                continue
            kept.append(box)
        return OracleBoxRegion(kept, dim=self._dim)

    def measure(self) -> float:
        """Recursive coordinate-compression sweep (exact, any dimension)."""
        if self.is_empty():
            return 0.0
        boxes = self._boxes
        dim = self._dim
        cuts = []
        for axis in range(dim):
            values = np.unique(
                np.concatenate(
                    [[b.lo[axis] for b in boxes], [b.hi[axis] for b in boxes]]
                )
            )
            cuts.append(values)
        if any(len(c) < 2 for c in cuts):
            return 0.0
        lows = np.vstack([b.lo for b in boxes])
        highs = np.vstack([b.hi for b in boxes])
        return self._measure_recursive(
            lows, highs, cuts, 0, np.ones(len(boxes), bool)
        )

    def _measure_recursive(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        cuts: list[np.ndarray],
        axis: int,
        active: np.ndarray,
    ) -> float:
        values = cuts[axis]
        total = 0.0
        for left, right in zip(values[:-1], values[1:]):
            mid = (left + right) / 2.0
            spanning = active & (lows[:, axis] <= mid) & (highs[:, axis] >= mid)
            if not spanning.any():
                continue
            width = right - left
            if axis == len(cuts) - 1:
                total += width
            else:
                total += width * self._measure_recursive(
                    lows, highs, cuts, axis + 1, spanning
                )
        return total

    def nearest_point_to(self, point: Sequence[float]) -> np.ndarray | None:
        if self.is_empty():
            return None
        p = as_point(point, dim=self._dim)
        best: np.ndarray | None = None
        best_dist = np.inf
        for box in self._boxes:
            candidate = box.nearest_point_to(p)
            dist = float(np.sum(np.abs(candidate - p)))
            if dist < best_dist:
                best, best_dist = candidate, dist
        return best

    def corner_points(self) -> np.ndarray:
        if self.is_empty():
            return np.empty((0, self._dim))
        corners = np.vstack([box.corners() for box in self._boxes])
        return np.unique(corners, axis=0)

    def sample_points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.is_empty():
            raise InvalidParameterError("cannot sample from an empty region")
        volumes = np.array([b.volume() for b in self._boxes])
        if volumes.sum() > 0:
            probs = volumes / volumes.sum()
        else:
            probs = np.full(len(self._boxes), 1.0 / len(self._boxes))
        counts = rng.multinomial(n, probs)
        chunks = [
            box.sample_points(rng, int(count))
            for box, count in zip(self._boxes, counts)
            if count
        ]
        return np.vstack(chunks) if chunks else np.empty((0, self._dim))

    def _check_dim(self, other: "OracleBoxRegion") -> None:
        if self._boxes and other._boxes and other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, what="region")
