"""Geometric primitives: points, axis-aligned boxes, and box unions.

These are the substrate for the rectangle-based representation of dynamic
anti-dominance regions and safe regions (Section V of the paper).
"""

from repro.geometry.box import Box
from repro.geometry.point import as_point, as_points, point_distance_l1
from repro.geometry.region import BoxRegion
from repro.geometry.region_oracle import OracleBoxRegion
from repro.geometry.transform import (
    orthant_of,
    to_query_space,
    window_box,
)

__all__ = [
    "Box",
    "BoxRegion",
    "OracleBoxRegion",
    "as_point",
    "as_points",
    "point_distance_l1",
    "orthant_of",
    "to_query_space",
    "window_box",
]
