"""Point coercion and small vector helpers.

Points are plain 1-D ``numpy.float64`` arrays throughout the library; these
helpers centralise validation so every public entry point gives the same
error messages for malformed input.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError

__all__ = ["as_point", "as_points", "point_distance_l1", "weighted_l1"]


def as_point(value: Sequence[float] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Coerce ``value`` into a 1-D float64 array, validating dimensionality.

    Parameters
    ----------
    value:
        Any sequence of numbers (list, tuple, ndarray).
    dim:
        Expected dimensionality; ``None`` accepts any.

    Raises
    ------
    InvalidParameterError
        If the value is not one-dimensional or contains non-finite entries.
    DimensionMismatchError
        If ``dim`` is given and does not match.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidParameterError(
            f"a point must be a 1-D sequence of numbers, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise InvalidParameterError("a point must have at least one dimension")
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"point contains non-finite values: {arr!r}")
    if dim is not None and arr.size != dim:
        raise DimensionMismatchError(dim, arr.size)
    return arr


def as_points(values: Iterable[Sequence[float]] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Coerce ``values`` into an ``(n, d)`` float64 matrix of points.

    An empty input yields a ``(0, dim)`` array when ``dim`` is known and a
    ``(0, 0)`` array otherwise.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return np.empty((0, dim if dim is not None else 0), dtype=np.float64)
    if arr.ndim == 1:
        # A single point is promoted to a 1-row matrix.
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise InvalidParameterError(
            f"points must form a 2-D matrix, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError("points contain non-finite values")
    if dim is not None and arr.shape[1] != dim:
        raise DimensionMismatchError(dim, arr.shape[1], what="point matrix")
    return arr


def point_distance_l1(a: np.ndarray, b: np.ndarray) -> float:
    """Plain L1 distance between two points."""
    return float(np.sum(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))))


def weighted_l1(a: np.ndarray, b: np.ndarray, weights: Sequence[float]) -> float:
    """Weighted L1 distance ``sum_i w_i * |a_i - b_i|`` (Eqn. 9 terms)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != a.shape:
        raise DimensionMismatchError(a.size, w.size, what="weight vector")
    return float(np.sum(w * np.abs(a - b)))
