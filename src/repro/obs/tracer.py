"""Nested-span tracing with a near-free disabled path.

A :class:`Span` is one timed region of the why-not pipeline (one
``engine.safe_region`` build, one kernel sweep); spans nest through a
context-manager API and form trees rooted at :attr:`Tracer.roots`.
Timing uses a caller-injectable monotonic clock (``time.perf_counter``
by default) so tests pin exact durations with a fake clock.

The disabled fast path is the design constraint: production engines run
with tracing off, and every instrumented call site costs one attribute
check plus the return of a shared no-op context manager — no span
objects, no clock reads, no list appends::

    with tracer.span("engine.mwq"):   # ~free when tracer.enabled is False
        ...

Balance accounting (``spans_started`` / ``spans_closed`` and the open
stack) lets exporters and CI detect spans that never closed or closed
out of order.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed, attributed region; children are spans opened inside it."""

    __slots__ = ("name", "attributes", "children", "start_s", "end_s")

    def __init__(self, name: str, attributes: dict | None = None) -> None:
        self.name = name
        self.attributes: dict = attributes or {}
        self.children: list[Span] = []
        self.start_s: float | None = None
        self.end_s: float | None = None

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float | None:
        if self.start_s is None or self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span; chainable, no-op-compatible."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-serialisable form (schema in docs/OBSERVABILITY.md)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        duration = self.duration_s
        timing = f"{duration * 1e3:.3f}ms" if duration is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class _NullSpan:
    """Shared no-op span/context-manager returned by disabled tracers.

    Supports the full call surface of a real span (``set`` chains, the
    ``with`` protocol) so instrumented code never branches on whether
    tracing is on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager materialising one span on an enabled tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and self._span is not None:
            self._span.attributes.setdefault("error", repr(exc))
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects span trees; disabled instances are inert and ~free.

    Parameters
    ----------
    enabled:
        When false, :meth:`span` returns the shared :data:`NULL_SPAN`
        and the tracer records nothing.
    clock:
        Monotonic time source returning seconds; defaults to
        ``time.perf_counter``.  Injected by tests for deterministic
        durations.
    max_roots:
        Ring retention bound on :attr:`roots`: when a newly closed root
        would exceed it, the oldest root *tree* is evicted and every
        span it held is added to :attr:`spans_dropped`.  ``None``
        (default) keeps the historical unbounded behaviour; long-lived
        engines pass a bound (see :mod:`repro.core.engine_obs`).
        Retention only runs when a root closes, so the disabled fast
        path stays allocation-free.
    """

    __slots__ = (
        "enabled",
        "clock",
        "roots",
        "max_roots",
        "_stack",
        "spans_started",
        "spans_closed",
        "spans_dropped",
    )

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        max_roots: int | None = None,
    ) -> None:
        if max_roots is not None and max_roots < 1:
            raise ValueError("max_roots must be a positive integer or None")
        self.enabled = enabled
        self.clock = clock if clock is not None else time.perf_counter
        self.roots: list[Span] = []
        self.max_roots = max_roots
        self._stack: list[Span] = []
        self.spans_started = 0
        self.spans_closed = 0
        self.spans_dropped = 0

    # ------------------------------------------------------------------
    # The instrumentation surface
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes) -> "_SpanHandle | _NullSpan":
        """Open a (lazily started) span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, attributes)

    # ------------------------------------------------------------------
    # Internals used by the handle
    # ------------------------------------------------------------------
    def _open(self, name: str, attributes: dict) -> Span:
        span = Span(name, attributes)
        span.start_s = self.clock()
        self._stack.append(span)
        self.spans_started += 1
        return span

    def _close(self, span: Span | None) -> None:
        if span is None:
            return
        span.end_s = self.clock()
        self.spans_closed += 1
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # Out-of-order close: drop it from wherever it sits.
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
            if self.max_roots is not None and len(self.roots) > self.max_roots:
                evicted = self.roots.pop(0)
                self.spans_dropped += sum(1 for _ in evicted.walk())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def is_balanced(self) -> bool:
        """True when every started span has closed (no dangling spans)."""
        return not self._stack and self.spans_started == self.spans_closed

    def iter_spans(self) -> Iterator[Span]:
        """Pre-order traversal over every *closed* recorded span."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name, in traversal order."""
        return [span for span in self.iter_spans() if span.name == name]

    def clear(self) -> None:
        """Drop all recorded spans and balance counters (open spans too:
        a cleared tracer starts a fresh, balanced recording)."""
        self.roots.clear()
        self._stack.clear()
        self.spans_started = 0
        self.spans_closed = 0
        self.spans_dropped = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, roots={len(self.roots)}, "
            f"open={len(self._stack)}, dropped={self.spans_dropped})"
        )
