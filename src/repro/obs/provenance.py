"""Environment provenance for benchmark artifacts.

Every ``BENCH_*.json`` row should be comparable across machines and
commits; :func:`environment_provenance` captures the knobs that actually
move the numbers (interpreter, numpy, CPU count, git SHA) in one flat,
JSON-serialisable dict.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = ["environment_provenance"]


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_provenance() -> dict:
    """Flat dict of the environment facts benchmarks should record."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None

    # Late import: repro/__init__.py imports submodules that may import
    # repro.obs, so reaching back for __version__ at module level would
    # be circular.
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover
        repro_version = None

    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "repro_version": repro_version,
        "argv": list(sys.argv),
    }
