"""Cost-drift sentinel: estimated-vs-actual statistics per operator.

The planner's calibrated cost model (:mod:`repro.plan.cost`) predicts
seconds per operator; hardware, dataset shape and cache warmth move the
truth.  This module aggregates the :class:`~repro.obs.journal.
QueryJournal`'s per-plan (estimate, actual) pairs into per-operator
drift statistics — an EWMA of the ``actual / estimated`` ratio, a
geometric-mean ratio, and a flag when the EWMA leaves a configurable
band — and proposes the multiplicative recalibration that would centre
the model again (scale the operator's cost constants by
``suggested_scale``).

Like the journal, this is pure aggregation: it reads plain records and
publishes plain gauges (``plan.drift.<operator>``), importing nothing
from the planner it watches.  The engine surface is
``engine.drift_report()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_DRIFT_BAND",
    "OperatorDrift",
    "DriftReport",
    "aggregate_drift",
]

#: EWMA ratios inside [lo, hi] are considered calibrated.  2x either
#: way is generous on purpose: estimates guide *relative* operator
#: choice, so only order-of-magnitude drift endangers plan quality.
DEFAULT_DRIFT_BAND = (0.5, 2.0)

#: Guard against zero/degenerate estimates (the cost model emits
#: strictly positive seconds, but the sentinel must not divide by 0).
_MIN_ESTIMATE_S = 1e-12


@dataclass(frozen=True)
class OperatorDrift:
    """Estimation-error statistics of one physical operator.

    ``ewma_ratio`` tracks the recency-weighted ``actual / estimated``
    ratio (1.0 = perfectly calibrated, >1 = the model is optimistic);
    ``suggested_scale`` is the geometric-mean ratio — multiplying the
    operator's cost constants by it recentres the model over the
    observed window.
    """

    operator: str
    samples: int
    estimated_total_s: float
    actual_total_s: float
    ewma_ratio: float
    geomean_ratio: float
    flagged: bool
    suggested_scale: float

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "samples": self.samples,
            "estimated_total_s": self.estimated_total_s,
            "actual_total_s": self.actual_total_s,
            "ewma_ratio": self.ewma_ratio,
            "geomean_ratio": self.geomean_ratio,
            "flagged": self.flagged,
            "suggested_scale": self.suggested_scale,
        }


@dataclass(frozen=True)
class DriftReport:
    """Per-operator drift table plus the parameters it was built with."""

    operators: tuple[OperatorDrift, ...]
    band: tuple[float, float]
    ewma_alpha: float
    min_samples: int

    def flagged(self) -> list[OperatorDrift]:
        """Operators whose EWMA ratio escaped the band."""
        return [entry for entry in self.operators if entry.flagged]

    def get(self, operator: str) -> OperatorDrift | None:
        for entry in self.operators:
            if entry.operator == operator:
                return entry
        return None

    def publish(self, metrics: MetricsRegistry) -> None:
        """Set one ``plan.drift.<operator>`` gauge per operator to its
        EWMA ratio (scrape-ready through ``to_prometheus``)."""
        for entry in self.operators:
            metrics.gauge(
                f"plan.drift.{entry.operator}",
                "EWMA of actual/estimated seconds for this operator",
            ).set(entry.ewma_ratio)

    def render(self) -> str:
        """Human-readable drift table, worst offenders first."""
        lines = [
            f"{'operator':<24} {'n':>4} {'est_ms':>9} {'act_ms':>9} "
            f"{'ewma':>7} {'scale':>7}  status"
        ]
        for entry in self.operators:
            status = "DRIFTING" if entry.flagged else "ok"
            if entry.samples < self.min_samples:
                status = f"ok (<{self.min_samples} samples)"
            lines.append(
                f"{entry.operator:<24} {entry.samples:>4} "
                f"{entry.estimated_total_s * 1e3:>9.3f} "
                f"{entry.actual_total_s * 1e3:>9.3f} "
                f"{entry.ewma_ratio:>7.2f} {entry.suggested_scale:>7.2f}  "
                f"{status}"
            )
        if not self.operators:
            lines.append("(no journal records)")
        flagged = self.flagged()
        if flagged:
            proposals = ", ".join(
                f"{entry.operator} x{entry.suggested_scale:.2f}"
                for entry in flagged
            )
            lines.append(
                f"recalibration proposal: scale cost constants by {proposals}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "band": list(self.band),
            "ewma_alpha": self.ewma_alpha,
            "min_samples": self.min_samples,
            "operators": [entry.to_dict() for entry in self.operators],
        }


def aggregate_drift(
    records: Iterable,
    *,
    ewma_alpha: float = 0.3,
    band: Sequence[float] = DEFAULT_DRIFT_BAND,
    min_samples: int = 3,
) -> DriftReport:
    """Fold journal records into a :class:`DriftReport`.

    Parameters
    ----------
    records:
        :class:`~repro.obs.journal.JournalRecord` iterable (a
        ``QueryJournal`` works directly), consumed in order — the EWMA
        weights later records more.
    ewma_alpha:
        Recency weight in ``(0, 1]``; 1.0 degenerates to "last ratio".
    band:
        ``(lo, hi)`` EWMA-ratio band considered calibrated.
    min_samples:
        Operators with fewer samples are reported but never flagged
        (one cold-cache outlier must not trigger recalibration).
    """
    if not 0.0 < ewma_alpha <= 1.0:
        raise ValueError("ewma_alpha must lie in (0, 1]")
    lo, hi = float(band[0]), float(band[1])
    if not 0.0 < lo < hi:
        raise ValueError(f"band must satisfy 0 < lo < hi, got ({lo}, {hi})")
    if min_samples < 1:
        raise ValueError("min_samples must be a positive integer")

    per_op: dict[str, dict] = {}
    for entry in records:
        state = per_op.setdefault(
            entry.operator,
            {
                "samples": 0,
                "est_total": 0.0,
                "act_total": 0.0,
                "ewma": None,
                "log_sum": 0.0,
            },
        )
        ratio = entry.actual_seconds / max(
            entry.estimated_seconds, _MIN_ESTIMATE_S
        )
        ratio = max(ratio, _MIN_ESTIMATE_S)  # log-safe floor
        state["samples"] += 1
        state["est_total"] += entry.estimated_seconds
        state["act_total"] += entry.actual_seconds
        state["log_sum"] += math.log(ratio)
        state["ewma"] = (
            ratio
            if state["ewma"] is None
            else ewma_alpha * ratio + (1.0 - ewma_alpha) * state["ewma"]
        )

    operators = []
    for name, state in per_op.items():
        geomean = math.exp(state["log_sum"] / state["samples"])
        ewma = state["ewma"]
        flagged = state["samples"] >= min_samples and not lo <= ewma <= hi
        operators.append(
            OperatorDrift(
                operator=name,
                samples=state["samples"],
                estimated_total_s=state["est_total"],
                actual_total_s=state["act_total"],
                ewma_ratio=ewma,
                geomean_ratio=geomean,
                flagged=flagged,
                suggested_scale=geomean,
            )
        )
    # Worst calibration first: largest |log ewma| sorts to the top.
    operators.sort(key=lambda entry: -abs(math.log(entry.ewma_ratio)))
    return DriftReport(
        operators=tuple(operators),
        band=(lo, hi),
        ewma_alpha=float(ewma_alpha),
        min_samples=int(min_samples),
    )
