"""Per-query journal: one structured record per executed plan.

The :class:`QueryJournal` is the engine's bounded flight recorder.  The
executor layer feeds it one :class:`JournalRecord` per top-level plan
execution — surface, chosen operator, dataset epoch, config
fingerprint, estimated vs. actual seconds, and the per-request *counter
deltas* of the tracked counter families (``kernels.*`` / ``prune.*`` /
``cache.*`` / ``shard.*`` and friends).  Records live in a ring of
fixed capacity, so a long-lived serving engine pays O(capacity) memory
no matter how many queries it answers; evictions are accounted in
:attr:`QueryJournal.dropped`.

Layering: this module is pure data + aggregation.  It never imports the
engine, planner or kernels — upper layers construct the field values
and call :meth:`QueryJournal.record` (see
:meth:`repro.core.engine.WhyNotEngine._run_plan`).

Naming note: a :class:`JournalRecord` is a *runtime provenance* row
(one executed plan), deliberately distinct from
:class:`repro.experiments.records.QueryRecord`, which is an
*experiment measurement* row (one (query, why-not point) pair of the
paper's tables).  The two never share a module or a name.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TRACKED_COUNTER_PREFIXES",
    "JournalRecord",
    "QueryJournal",
    "validate_journal",
]

#: Counter families whose per-request deltas a journal records.  Only
#: counters are tracked — gauges move non-monotonically and histograms
#: have their own journal-fed latency series.
TRACKED_COUNTER_PREFIXES = (
    "kernels.",
    "prune.",
    "cache.",
    "shard.",
    "index.",
    "dsl_cache.",
    "engine.",
)


@dataclass(frozen=True)
class JournalRecord:
    """One executed plan, as the journal remembers it.

    Not to be confused with
    :class:`repro.experiments.records.QueryRecord` — that class holds
    the paper's per-(query, why-not) quality/time measurements, while
    this one holds serving provenance for a single plan execution.

    Attributes
    ----------
    seq:
        Monotone execution number (0-based) within the journal's
        lifetime; survives ring eviction, so retained records always
        carry strictly increasing ``seq`` values.
    surface:
        Logical surface answered (``"safe_region"``, ``"membership"``,
        ...; see :mod:`repro.plan.logical`).
    operator:
        Name of the physical root operator the planner chose
        (``"sr-cached-fold"``, ``"membership-sharded"``, ...).
    epoch:
        Dataset epoch the plan executed against.
    config_fingerprint:
        Short stable digest of the engine config the plan was built for.
    estimated_seconds:
        The cost model's prediction for the root operator.
    actual_seconds:
        Measured wall-clock of the root execution.
    counters:
        ``{counter_name: delta}`` of tracked counters that moved during
        the request (zero deltas are omitted to keep records small).
    """

    seq: int
    surface: str
    operator: str
    epoch: int
    config_fingerprint: str
    estimated_seconds: float
    actual_seconds: float
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable form (one JSONL line of the export)."""
        return {
            "seq": self.seq,
            "surface": self.surface,
            "operator": self.operator,
            "epoch": self.epoch,
            "config_fingerprint": self.config_fingerprint,
            "estimated_seconds": self.estimated_seconds,
            "actual_seconds": self.actual_seconds,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JournalRecord":
        return cls(
            seq=int(payload["seq"]),
            surface=str(payload["surface"]),
            operator=str(payload["operator"]),
            epoch=int(payload["epoch"]),
            config_fingerprint=str(payload["config_fingerprint"]),
            estimated_seconds=float(payload["estimated_seconds"]),
            actual_seconds=float(payload["actual_seconds"]),
            counters=dict(payload.get("counters", {})),
        )


class QueryJournal:
    """Bounded ring buffer of :class:`JournalRecord` entries.

    Parameters
    ----------
    capacity:
        Maximum retained records; older entries are evicted FIFO and
        counted in :attr:`dropped`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        given, (a) :meth:`counter_snapshot` / :meth:`counter_delta`
        track its counter families for per-request deltas, and (b)
        every :meth:`record` feeds per-surface
        (``journal.surface.<surface>.seconds``) and per-operator
        (``journal.op.<operator>.seconds``) latency histograms, which
        flow into :func:`repro.obs.exporters.to_prometheus` like any
        other metric.
    counter_prefixes:
        Counter-name prefixes to include in per-request deltas.
    """

    __slots__ = (
        "capacity",
        "appended",
        "_records",
        "_metrics",
        "_prefixes",
        "_tracked",
        "_tracked_len",
        "_histograms",
    )

    def __init__(
        self,
        capacity: int = 256,
        metrics: MetricsRegistry | None = None,
        counter_prefixes: tuple = TRACKED_COUNTER_PREFIXES,
    ) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be a positive integer")
        self.capacity = int(capacity)
        self.appended = 0
        self._records: deque = deque(maxlen=self.capacity)
        self._metrics = metrics
        self._prefixes = tuple(counter_prefixes)
        # Cache of the tracked (name, Counter) pairs, invalidated by
        # registry growth (metrics are only ever added, never removed).
        self._tracked: list = []
        self._tracked_len = -1
        self._histograms: dict = {}

    # ------------------------------------------------------------------
    # Counter tracking
    # ------------------------------------------------------------------
    def _tracked_counters(self) -> list:
        metrics = self._metrics
        if metrics is None:
            return []
        if len(metrics) != self._tracked_len:
            self._tracked = [
                (name, metric)
                for name in metrics.names()
                if (metric := metrics.get(name)).kind == "counter"
                and name.startswith(self._prefixes)
            ]
            self._tracked_len = len(metrics)
        return self._tracked

    def counter_snapshot(self) -> dict:
        """``{name: value}`` of every tracked counter, cheap enough to
        take per request (one pass over a cached list)."""
        return {name: metric.value for name, metric in self._tracked_counters()}

    def counter_delta(self, before: Mapping) -> dict:
        """Non-zero movement of tracked counters since ``before``.
        Counters born mid-request count from zero."""
        delta = {}
        for name, metric in self._tracked_counters():
            moved = metric.value - before.get(name, 0)
            if moved:
                delta[name] = moved
        return delta

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        *,
        surface: str,
        operator: str,
        epoch: int,
        config_fingerprint: str,
        estimated_seconds: float,
        actual_seconds: float,
        counters: dict | None = None,
    ) -> JournalRecord:
        """Append one executed-plan record (evicting FIFO when full)."""
        entry = JournalRecord(
            seq=self.appended,
            surface=surface,
            operator=operator,
            epoch=epoch,
            config_fingerprint=config_fingerprint,
            estimated_seconds=float(estimated_seconds),
            actual_seconds=float(actual_seconds),
            counters=counters if counters is not None else {},
        )
        self.appended += 1
        self._records.append(entry)
        if self._metrics is not None:
            self._observe(f"journal.surface.{surface}.seconds", entry.actual_seconds)
            self._observe(f"journal.op.{operator}.seconds", entry.actual_seconds)
        return entry

    def _observe(self, name: str, seconds: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._metrics.histogram(
                name, "journal-fed latency of one surface/operator"
            )
            self._histograms[name] = histogram
        histogram.observe(seconds)

    # ------------------------------------------------------------------
    # Introspection + export
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Records evicted by the ring (``appended - retained``)."""
        return self.appended - len(self._records)

    def records(self) -> list[JournalRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def summary(self) -> dict:
        """Accounting plus per-surface latency aggregates."""
        surfaces: dict = {}
        for entry in self._records:
            agg = surfaces.setdefault(
                entry.surface, {"count": 0, "total_s": 0.0}
            )
            agg["count"] += 1
            agg["total_s"] += entry.actual_seconds
        for agg in surfaces.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return {
            "capacity": self.capacity,
            "appended": self.appended,
            "dropped": self.dropped,
            "retained": len(self._records),
            "surfaces": surfaces,
        }

    def to_payload(self) -> dict:
        """The ``journal`` section of a ``repro.obs/2`` export."""
        return {
            "capacity": self.capacity,
            "appended": self.appended,
            "dropped": self.dropped,
            "records": [entry.to_dict() for entry in self._records],
        }

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest record first."""
        return "".join(
            json.dumps(entry.to_dict(), default=float) + "\n"
            for entry in self._records
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def clear(self) -> None:
        """Drop retained records and reset the accounting."""
        self._records.clear()
        self.appended = 0

    def __repr__(self) -> str:
        return (
            f"QueryJournal(retained={len(self._records)}/{self.capacity}, "
            f"appended={self.appended}, dropped={self.dropped})"
        )


def validate_journal(journal) -> None:
    """Raise ``ValueError`` when a journal (or record list) is
    inconsistent: non-monotone ``seq``, negative durations, malformed
    counters, or ring accounting that does not balance."""
    if isinstance(journal, QueryJournal):
        records = journal.records()
        if journal.dropped < 0:
            raise ValueError(
                f"negative drop count: appended={journal.appended}, "
                f"retained={len(records)}"
            )
        if journal.appended != len(records) + journal.dropped:
            raise ValueError(
                f"journal accounting broken: appended={journal.appended} != "
                f"retained={len(records)} + dropped={journal.dropped}"
            )
        if len(records) > journal.capacity:
            raise ValueError(
                f"retained {len(records)} records over capacity "
                f"{journal.capacity}"
            )
    else:
        records = list(journal)
    last_seq = None
    for i, entry in enumerate(records):
        where = f"records[{i}]"
        if not entry.surface or not isinstance(entry.surface, str):
            raise ValueError(f"{where}: surface must be a non-empty string")
        if not entry.operator or not isinstance(entry.operator, str):
            raise ValueError(f"{where}: operator must be a non-empty string")
        if last_seq is not None and entry.seq <= last_seq:
            raise ValueError(
                f"{where}: seq {entry.seq} not after {last_seq} "
                "(records must be strictly seq-ordered)"
            )
        last_seq = entry.seq
        if entry.epoch < 0:
            raise ValueError(f"{where}: negative epoch {entry.epoch}")
        if entry.estimated_seconds < 0:
            raise ValueError(
                f"{where}: negative estimate {entry.estimated_seconds!r}"
            )
        if entry.actual_seconds < 0:
            raise ValueError(
                f"{where}: negative duration {entry.actual_seconds!r}"
            )
        if not isinstance(entry.counters, dict):
            raise ValueError(f"{where}: counters must be a dict")
        for name, value in entry.counters.items():
            if not isinstance(name, str):
                raise ValueError(f"{where}: counter name {name!r} not a string")
            if not isinstance(value, (int, float)):
                raise ValueError(
                    f"{where}: counter {name!r} delta {value!r} not numeric"
                )
