"""``repro.obs`` — unified tracing and metrics for the why-not pipeline.

One subsystem replaces the three disconnected ad-hoc stats dataclasses:

* :class:`Tracer` — nested spans with monotonic timing and a no-op fast
  path when disabled (:mod:`repro.obs.tracer`).
* :class:`MetricsRegistry` — named counters/gauges/histograms; the
  legacy stats classes are thin views over its counters
  (:mod:`repro.obs.metrics`, :mod:`repro.obs.stats`).
* Exporters — JSON payloads (``repro.obs/2`` schema; ``/1`` still
  validates), Prometheus text, a human span-tree renderer, and a
  validator used by CI (:mod:`repro.obs.exporters`).
* :class:`QueryJournal` — bounded ring of per-executed-plan
  :class:`JournalRecord` provenance rows (:mod:`repro.obs.journal`).
* :func:`aggregate_drift` — the cost-drift sentinel over journal
  records (:mod:`repro.obs.drift`).
* :func:`environment_provenance` — machine/commit facts for benchmark
  artifacts (:mod:`repro.obs.provenance`).

:class:`Observability` bundles one tracer + one registry per engine; see
``docs/OBSERVABILITY.md`` for the span taxonomy and counter glossary.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.drift import (
    DEFAULT_DRIFT_BAND,
    DriftReport,
    OperatorDrift,
    aggregate_drift,
)
from repro.obs.exporters import (
    SCHEMA,
    SCHEMA_V1,
    export_obs,
    prom_name,
    render_span_tree,
    to_prometheus,
    validate_export,
)
from repro.obs.journal import (
    TRACKED_COUNTER_PREFIXES,
    JournalRecord,
    QueryJournal,
    validate_journal,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.provenance import environment_provenance
from repro.obs.stats import CounterBackedStats
from repro.obs.tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "SCHEMA",
    "SCHEMA_V1",
    "DEFAULT_BUCKETS",
    "DEFAULT_DRIFT_BAND",
    "NULL_SPAN",
    "TRACKED_COUNTER_PREFIXES",
    "Counter",
    "CounterBackedStats",
    "DriftReport",
    "Gauge",
    "Histogram",
    "JournalRecord",
    "MetricsRegistry",
    "Observability",
    "OperatorDrift",
    "QueryJournal",
    "Span",
    "Tracer",
    "aggregate_drift",
    "environment_provenance",
    "export_obs",
    "prom_name",
    "render_span_tree",
    "to_prometheus",
    "validate_export",
    "validate_journal",
]


class Observability:
    """One tracer + one metrics registry, the unit an engine owns.

    The engine constructs this from ``WhyNotConfig.trace``; instrumented
    code calls ``obs.span(...)`` and ``obs.counter(...)`` without caring
    whether tracing is live.  Disabled bundles still expose the registry
    (counters attached by stats views keep working) but their tracer
    records nothing.
    """

    __slots__ = ("enabled", "tracer", "metrics", "journal")

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] | None = None,
        max_roots: int | None = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled, clock=clock, max_roots=max_roots)
        self.metrics = MetricsRegistry()
        # Installed by the engine when WhyNotConfig.journal is on; a
        # bare bundle has no journal and the executor hook stays free.
        self.journal: QueryJournal | None = None

    # Thin delegates so call sites hold one object, not two.
    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        return self.metrics.histogram(name, help, buckets)

    def attach_stats(self, prefix: str, stats: CounterBackedStats) -> None:
        """Surface a stats view's live counters as ``{prefix}.{field}``."""
        for field, counter in stats.counters().items():
            self.metrics.attach(f"{prefix}.{field}", counter)

    def export(self, env: bool = False, extra=None) -> dict:
        """JSON-serialisable payload (``repro.obs/2``) of this bundle,
        including the query journal when one is installed."""
        return export_obs(
            tracer=self.tracer,
            metrics=self.metrics,
            env=environment_provenance() if env else None,
            extra=extra,
            journal=self.journal,
        )

    def render(self) -> str:
        """Human-readable span tree of everything recorded so far."""
        return render_span_tree(self.tracer)

    def clear(self) -> None:
        """Drop recorded spans and journal records; metric values are
        left untouched."""
        self.tracer.clear()
        if self.journal is not None:
            self.journal.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Observability({state}, spans={self.tracer.spans_started}, "
            f"metrics={len(self.metrics)})"
        )
