"""Named counters, gauges and histograms (:class:`MetricsRegistry`).

The registry is the single aggregation point of the observability layer:
every cost the paper's Section VII reports per algorithm — window
queries, node accesses, dominance tests, boxes created and pruned, cache
hits — is a named metric here, so one exporter call yields the whole
cost profile of a run instead of three disconnected ad-hoc stats
objects.

Metrics are plain mutable objects (``Counter.value`` is a raw attribute,
``inc`` a single addition) so the hot paths pay one attribute update per
event.  The registry stores them by name in insertion order; existing
metric objects — e.g. the counters backing :class:`repro.index.stats.
IndexStats` — can be :meth:`~MetricsRegistry.attach`-ed under a prefixed
name, which shares the *same* counter object between the stats view and
the registry: increments through either side are visible to both.

Snapshots are plain ``dict``s (name -> number, histograms -> summary
dict); two snapshots subtract into a delta via
:meth:`MetricsRegistry.delta`, which is how the benchmarks attribute a
wall-clock regression to a specific counter.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically *intended* integer/float counter.

    ``value`` is deliberately a plain attribute: stats views assign to it
    directly (``stats.queries = 0`` in ``reset``), and the hot paths use
    ``inc`` which is one add.  Nothing enforces monotonicity — ``reset``
    and the stats-roll contract legitimately zero it.

    Single-threaded by default: ``value += amount`` is a read-modify-
    write that can lose increments under concurrent readers.  A registry
    that has been :meth:`MetricsRegistry.make_threadsafe`-d shares one
    lock into ``_lock`` on every metric it owns (including attached
    stats-view counters), and ``inc`` then takes it — the branch costs
    one attribute load on the default path.
    """

    __slots__ = ("name", "help", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = "", value: "int | float" = 0) -> None:
        self.name = name
        self.help = help
        self.value = value
        self._lock: threading.RLock | None = None

    def inc(self, amount: "int | float" = 1) -> None:
        lock = self._lock
        if lock is None:
            self.value += amount
        else:
            with lock:
                self.value += amount

    def set(self, value: "int | float") -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def snapshot_value(self) -> "int | float":
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A point-in-time value (cache sizes, box counts, hit rates)."""

    __slots__ = ("name", "help", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", value: float = 0.0) -> None:
        self.name = name
        self.help = help
        self.value = value
        self._lock: threading.RLock | None = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        lock = self._lock
        if lock is None:
            self.value += amount
        else:
            with lock:
                self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        lock = self._lock
        if lock is None:
            self.value -= amount
        else:
            with lock:
                self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def snapshot_value(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


# Spans and safe-region builds live between ~10us and tens of seconds.
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram:
    """Fixed-bucket histogram (Prometheus classic style).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    (non-cumulative internally; the exporters cumulate), with one
    overflow slot at the end for observations above the largest bound.
    """

    __slots__ = (
        "name", "help", "buckets", "bucket_counts", "count", "sum", "_lock",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock: threading.RLock | None = None

    def observe(self, value: float) -> None:
        lock = self._lock
        if lock is None:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
        else:
            with lock:
                self.bucket_counts[bisect_left(self.buckets, value)] += 1
                self.count += 1
                self.sum += value

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts (``le`` semantics), overflow last."""
        out: list[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def snapshot_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(bound): cumulative
                for bound, cumulative in zip(
                    self.buckets, self.cumulative_counts()
                )
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum!r})"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are dotted (``"kernels.tiles"``, ``"index.node_accesses"``);
    the Prometheus exporter rewrites them to its character set.  Asking
    for an existing name with a different metric kind raises — a name
    means one thing for the lifetime of the registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._shared_lock: threading.RLock | None = None

    # ------------------------------------------------------------------
    # Thread safety (opt-in, for the concurrent serving layer)
    # ------------------------------------------------------------------
    @property
    def thread_safe(self) -> bool:
        """True once :meth:`make_threadsafe` has run."""
        return self._shared_lock is not None

    def make_threadsafe(self) -> None:
        """Install one shared re-entrant lock into every metric this
        registry owns, now and in the future.

        After this call, ``inc``/``dec``/``observe`` on any registered
        metric — including counters :meth:`attach`-ed from stats views,
        which share the same objects — are atomic across threads, and
        the registry's own get-or-create path is guarded.  Values and
        public behaviour are unchanged; idempotent.
        """
        if self._shared_lock is None:
            self._shared_lock = threading.RLock()
        for metric in self._metrics.values():
            metric._lock = self._shared_lock

    # ------------------------------------------------------------------
    # Get-or-create
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str):
        lock = self._shared_lock
        if lock is None:
            return self._get_or_create_unlocked(name, factory, kind)
        with lock:
            return self._get_or_create_unlocked(name, factory, kind)

    def _get_or_create_unlocked(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric
        metric = factory()
        metric._lock = self._shared_lock
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def attach(self, name: str, metric: "Counter | Gauge | Histogram") -> None:
        """Register an *existing* metric object under ``name``.

        The object is shared, not copied — this is how the counter-backed
        stats views (``IndexStats`` and friends) surface their live
        counters in an engine registry without double bookkeeping.
        Re-attaching the same object under the same name is a no-op;
        attaching a different object to a taken name raises.
        """
        existing = self._metrics.get(name)
        if existing is metric:
            return
        if existing is not None:
            raise ValueError(f"metric name {name!r} already in use")
        if self._shared_lock is not None:
            metric._lock = self._shared_lock
        self._metrics[name] = metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator["Counter | Gauge | Histogram"]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """``{name: value}`` for counters/gauges, summary dict for
        histograms.  JSON-serialisable by construction."""
        return {
            name: metric.snapshot_value()
            for name, metric in self._metrics.items()
        }

    def delta(self, before: Mapping) -> dict:
        """Per-metric difference of the current snapshot against an older
        one.  Numeric metrics subtract; histograms report count/sum
        deltas; metrics absent from ``before`` count from zero."""
        out: dict = {}
        for name, metric in self._metrics.items():
            now = metric.snapshot_value()
            prior = before.get(name)
            if isinstance(now, dict):
                prior_count = prior.get("count", 0) if isinstance(prior, dict) else 0
                prior_sum = prior.get("sum", 0.0) if isinstance(prior, dict) else 0.0
                out[name] = {
                    "count": now["count"] - prior_count,
                    "sum": now["sum"] - prior_sum,
                }
            else:
                base = prior if isinstance(prior, (int, float)) else 0
                out[name] = now - base
        return out

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()
