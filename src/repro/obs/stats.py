"""Counter-backed stats views (the shared stats protocol).

Before the observability layer, the library had three disconnected stats
dataclasses (``IndexStats``, ``DSLCacheStats``, ``SafeRegionStats``)
with diverging snapshot/reset surfaces.  They are now thin *views* over
:class:`repro.obs.metrics.Counter` objects: every field is a property
reading/writing one counter's ``value``, so

* every existing call site (``stats.queries += 1``,
  ``stats.peak_boxes = max(...)``, keyword construction) keeps working;
* an engine-level :class:`~repro.obs.metrics.MetricsRegistry` can
  :meth:`~repro.obs.metrics.MetricsRegistry.attach` the *same* counter
  objects under prefixed names, making the live values exportable
  without copying or polling;
* all stats classes share one protocol — ``snapshot() -> dict`` and
  ``reset() -> None`` — that the exporters and benchmarks rely on.

Subclasses declare their fields in ``_INT_FIELDS`` / ``_FLOAT_FIELDS``
/ ``_BOOL_FIELDS``; properties are generated at class-creation time.
"""

from __future__ import annotations

from repro.obs.metrics import Counter

__all__ = ["CounterBackedStats"]


def _make_field_property(name: str, cast) -> property:
    def getter(self):
        return cast(self._counters[name].value)

    def setter(self, value):
        self._counters[name].value = value

    getter.__name__ = setter.__name__ = name
    return property(getter, setter)


class CounterBackedStats:
    """Base class turning declared fields into counter-backed properties.

    The stats protocol every subclass provides:

    ``snapshot() -> dict``
        Plain field -> value mapping (JSON-serialisable), suitable for
        delta arithmetic (subtract two snapshots field-wise).
    ``reset() -> None``
        Zero every field.
    ``counters() -> dict``
        The live :class:`Counter` objects by field name, for registry
        attachment — mutations through the stats view and through the
        registry are the same object.
    """

    _INT_FIELDS: tuple[str, ...] = ()
    _FLOAT_FIELDS: tuple[str, ...] = ()
    _BOOL_FIELDS: tuple[str, ...] = ()

    _ALL_FIELDS: tuple[str, ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for name in cls._INT_FIELDS:
            setattr(cls, name, _make_field_property(name, int))
        for name in cls._FLOAT_FIELDS:
            setattr(cls, name, _make_field_property(name, float))
        for name in cls._BOOL_FIELDS:
            setattr(cls, name, _make_field_property(name, bool))
        cls._ALL_FIELDS = cls._INT_FIELDS + cls._FLOAT_FIELDS + cls._BOOL_FIELDS

    @classmethod
    def _field_names(cls) -> tuple[str, ...]:
        return cls._ALL_FIELDS

    def __init__(self, **values) -> None:
        # Instances are created per safe-region construction, so the
        # zero-value fast path stays allocation-lean: counters start at
        # 0 and the getters cast, so no per-kind zeroing is needed.
        self._counters = {name: Counter(name) for name in self._ALL_FIELDS}
        if values:
            unknown = set(values) - set(self._ALL_FIELDS)
            if unknown:
                raise TypeError(
                    f"{type(self).__name__} got unexpected fields "
                    f"{sorted(unknown)}"
                )
            for name, value in values.items():
                self._counters[name].value = value

    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    def snapshot(self) -> dict:
        """Field -> value; ints as int, seconds as float, flags as bool."""
        out: dict = {}
        for name in self._INT_FIELDS:
            out[name] = int(self._counters[name].value)
        for name in self._FLOAT_FIELDS:
            out[name] = float(self._counters[name].value)
        for name in self._BOOL_FIELDS:
            out[name] = bool(self._counters[name].value)
        return out

    def reset(self) -> None:
        for name in self._INT_FIELDS:
            self._counters[name].value = 0
        for name in self._FLOAT_FIELDS:
            self._counters[name].value = 0.0
        for name in self._BOOL_FIELDS:
            self._counters[name].value = False

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={value!r}" for name, value in self.snapshot().items()
        )
        return f"{type(self).__name__}({body})"
