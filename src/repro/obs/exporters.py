"""Exporters: JSON payloads, Prometheus text, human span trees.

Three consumers, three formats:

* :func:`export_obs` — one JSON-serialisable dict holding the span
  forest, the metrics snapshot, balance accounting and (new in schema
  ``repro.obs/2``) the optional query-journal section, validated by
  :func:`validate_export` (which still accepts ``repro.obs/1``
  payloads written before the journal existed).  The CLI's
  ``--metrics-out`` and the benchmark ``"obs"`` sections use this.
* :func:`to_prometheus` — classic Prometheus exposition text
  (``# TYPE`` lines, ``_total`` counters, cumulative ``_bucket{le=..}``
  histograms) for scraping a long-lived service.
* :func:`render_span_tree` — indented wall-time tree for humans.

:func:`validate_export` is the contract checker CI runs against every
traced workload: schema shape, every span closed, no negative duration,
children timed inside their parent, balanced nesting.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "SCHEMA",
    "SCHEMA_V1",
    "SUPPORTED_SCHEMAS",
    "export_obs",
    "prom_name",
    "to_prometheus",
    "render_span_tree",
    "validate_export",
]

#: Current export schema.  ``/2`` added the optional ``journal``
#: section and the ``spans_dropped`` counter; ``/1`` payloads (no
#: journal) remain valid input to :func:`validate_export`.
SCHEMA = "repro.obs/2"
SCHEMA_V1 = "repro.obs/1"
SUPPORTED_SCHEMAS = (SCHEMA_V1, SCHEMA)

# Relative slack for the child-inside-parent check: perf_counter is
# monotonic so violations indicate a bug, but allow for float rounding.
_NESTING_SLACK_S = 1e-9


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def export_obs(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    env: Mapping | None = None,
    extra: Mapping | None = None,
    journal=None,
) -> dict:
    """The full observability payload of one run as a plain dict.

    ``journal`` accepts a :class:`~repro.obs.journal.QueryJournal`
    (duck-typed on ``to_payload``); its retained records land under the
    ``"journal"`` key of the ``repro.obs/2`` payload.
    """
    payload: dict = {"schema": SCHEMA}
    if tracer is not None:
        payload["spans"] = [span.to_dict() for span in tracer.roots]
        payload["balanced"] = tracer.is_balanced
        payload["spans_started"] = tracer.spans_started
        payload["spans_closed"] = tracer.spans_closed
        payload["spans_dropped"] = getattr(tracer, "spans_dropped", 0)
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    if journal is not None:
        payload["journal"] = journal.to_payload()
    if env is not None:
        payload["env"] = dict(env)
    if extra:
        payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prom_name(name: str) -> str:
    """Registry name -> Prometheus metric name.

    ``plan.drift.sr-cached-fold`` -> ``repro_plan_drift_sr_cached_fold``:
    dots and hyphens (operator names contain ``-``) both become ``_``,
    so distinct registry names *can* sanitize to the same exposition
    name — :func:`to_prometheus` refuses such a registry rather than
    silently exporting two series under one name.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


#: Backward-compatible alias (pre-/2 internal name).
_prom_name = prom_name


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(metrics: MetricsRegistry) -> str:
    """Prometheus text format; counters get the ``_total`` suffix.

    Raises ``ValueError`` when two registry names sanitize to the same
    exposition name (e.g. ``a.b-c`` vs ``a.b_c``) — exporting both
    would corrupt the scrape.
    """
    seen: dict[str, str] = {}
    lines: list[str] = []
    for metric in metrics:
        base = prom_name(metric.name)
        clash = seen.get(base)
        if clash is not None:
            raise ValueError(
                f"metric names {clash!r} and {metric.name!r} both sanitize "
                f"to Prometheus name {base!r}; rename one"
            )
        seen[base] = metric.name
        if isinstance(metric, Counter):
            name = f"{base}_total"
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.help:
                lines.append(f"# HELP {base} {metric.help}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            if metric.help:
                lines.append(f"# HELP {base} {metric.help}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative):
                lines.append(f'{base}_bucket{{le="{bound:g}"}} {count}')
            lines.append(f'{base}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{base}_sum {_prom_value(metric.sum)}")
            lines.append(f"{base}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable span tree
# ----------------------------------------------------------------------
def _format_duration(duration_s: float | None) -> str:
    if duration_s is None:
        return "open"
    if duration_s >= 1.0:
        return f"{duration_s:.3f}s"
    if duration_s >= 1e-3:
        return f"{duration_s * 1e3:.2f}ms"
    return f"{duration_s * 1e6:.1f}us"


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attributes:
        body = ", ".join(f"{k}={v!r}" for k, v in span.attributes.items())
        attrs = f"  {{{body}}}"
    lines.append(
        f"{'  ' * depth}{span.name}  {_format_duration(span.duration_s)}{attrs}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_tree(tracer: Tracer) -> str:
    """Indented per-span wall times, one line per span."""
    lines: list[str] = []
    for root in tracer.roots:
        _render_span(root, 0, lines)
    if not tracer.is_balanced:
        lines.append(
            f"! unbalanced: {tracer.spans_started} started, "
            f"{tracer.spans_closed} closed"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Validation (used by tests and the CI traced-workload step)
# ----------------------------------------------------------------------
def _validate_span_dict(span: dict, path: str) -> None:
    if not isinstance(span, dict):
        raise ValueError(f"{path}: span must be a dict, got {type(span).__name__}")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{path}: span name must be a non-empty string")
    start = span.get("start_s")
    duration = span.get("duration_s")
    if not isinstance(start, (int, float)):
        raise ValueError(f"{path} ({name}): span never started")
    if duration is None:
        raise ValueError(f"{path} ({name}): span never closed")
    if not isinstance(duration, (int, float)) or duration < 0:
        raise ValueError(f"{path} ({name}): negative duration {duration!r}")
    children = span.get("children", [])
    if not isinstance(children, list):
        raise ValueError(f"{path} ({name}): children must be a list")
    end = start + duration
    for i, child in enumerate(children):
        child_path = f"{path}.children[{i}]"
        _validate_span_dict(child, child_path)
        child_start = child["start_s"]
        child_end = child_start + child["duration_s"]
        if child_start < start - _NESTING_SLACK_S or child_end > end + _NESTING_SLACK_S:
            raise ValueError(
                f"{child_path} ({child['name']}): timed outside parent "
                f"{name} [{start}, {end}] vs [{child_start}, {child_end}]"
            )


def _validate_journal_section(journal: dict) -> None:
    """Light structural checks of the ``repro.obs/2`` journal section
    (the deep record checks live in :func:`repro.obs.journal.
    validate_journal`, which operates on live journals)."""
    if not isinstance(journal, dict):
        raise ValueError("'journal' must be a dict")
    records = journal.get("records", [])
    if not isinstance(records, list):
        raise ValueError("journal 'records' must be a list")
    appended = journal.get("appended", len(records))
    dropped = journal.get("dropped", 0)
    if dropped < 0 or appended != len(records) + dropped:
        raise ValueError(
            f"journal accounting broken: appended={appended}, "
            f"retained={len(records)}, dropped={dropped}"
        )
    last_seq = None
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"journal records[{i}] must be a dict")
        for key in ("surface", "operator"):
            value = record.get(key)
            if not isinstance(value, str) or not value:
                raise ValueError(
                    f"journal records[{i}]: {key} must be a non-empty string"
                )
        for key in ("estimated_seconds", "actual_seconds"):
            value = record.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"journal records[{i}]: {key} must be non-negative, "
                    f"got {value!r}"
                )
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise ValueError(f"journal records[{i}]: seq must be an int")
        if last_seq is not None and seq <= last_seq:
            raise ValueError(
                f"journal records[{i}]: seq {seq} not after {last_seq}"
            )
        last_seq = seq


def validate_export(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the obs contract.

    Checks: a supported schema tag (``repro.obs/1`` or ``/2``),
    balanced nesting, every span closed with a non-negative duration,
    children timed inside their parents, a JSON-shaped metrics mapping,
    and — when present (``/2``) — a consistent journal section.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a dict")
    schema = payload.get("schema", "")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"unknown schema tag {schema!r}; supported: {SUPPORTED_SCHEMAS}"
        )
    if "balanced" in payload and payload["balanced"] is not True:
        raise ValueError(
            f"unbalanced span nesting: {payload.get('spans_started')} "
            f"started, {payload.get('spans_closed')} closed"
        )
    spans = payload.get("spans", [])
    if not isinstance(spans, list):
        raise ValueError("'spans' must be a list")
    for i, span in enumerate(spans):
        _validate_span_dict(span, f"spans[{i}]")
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict):
        raise ValueError("'metrics' must be a dict")
    for name, value in metrics.items():
        if not isinstance(name, str):
            raise ValueError(f"metric name {name!r} must be a string")
        if isinstance(value, dict):
            if "count" not in value or "sum" not in value:
                raise ValueError(
                    f"histogram metric {name!r} must carry count and sum"
                )
        elif not isinstance(value, (int, float, bool)):
            raise ValueError(
                f"metric {name!r} must be numeric or a histogram summary"
            )
    dropped = payload.get("spans_dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        raise ValueError(f"spans_dropped must be a non-negative int, got {dropped!r}")
    if "journal" in payload:
        _validate_journal_section(payload["journal"])
