"""Ablation: R*-tree vs brute-force scan as the window-query backend.

The R-tree wins on selective windows (the reverse-skyline membership
test) by touching a few nodes; the vectorised scan wins on tiny datasets.
Node-access counts are recorded alongside wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.transform import window_box
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex

N = 20_000


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(13)
    return rng.uniform(0, 1, size=(N, 2))


@pytest.fixture(scope="module")
def windows(points):
    rng = np.random.default_rng(14)
    centers = points[rng.integers(0, N, size=50)]
    queries = centers + rng.normal(0, 0.01, size=centers.shape)
    return [window_box(c, q) for c, q in zip(centers, queries)]


@pytest.fixture(scope="module")
def rtree(points):
    return RTree(points)


@pytest.fixture(scope="module")
def scan(points):
    return ScanIndex(points)


def test_ablation_window_queries_rtree(benchmark, rtree, windows):
    rtree.reset_stats()
    benchmark(lambda: [rtree.range_indices(box) for box in windows])
    benchmark.extra_info["node_accesses_per_query"] = (
        rtree.stats.node_accesses / max(1, rtree.stats.queries)
    )


def test_ablation_window_queries_scan(benchmark, scan, windows):
    benchmark(lambda: [scan.range_indices(box) for box in windows])
    benchmark.extra_info["points_scanned_per_query"] = N


def test_ablation_rtree_touches_fraction_of_nodes(rtree, windows):
    """Selective windows must touch a small fraction of the tree."""
    total_nodes = rtree.node_count()
    rtree.reset_stats()
    for box in windows:
        rtree.range_indices(box)
    per_query = rtree.stats.node_accesses / len(windows)
    assert per_query < 0.2 * total_nodes


def test_ablation_build_rtree_bulk(benchmark, points):
    benchmark.pedantic(lambda: RTree(points, bulk=True), rounds=3, iterations=1)


def test_ablation_build_rtree_insert(benchmark, points):
    subset = points[:500]  # One-by-one insertion is the slow path.
    benchmark.pedantic(
        lambda: RTree(subset, bulk=False), rounds=1, iterations=1
    )
