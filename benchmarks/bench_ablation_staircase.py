"""Ablation: staircase-merged anti-dominance regions (Algorithm 3) vs
per-point boxes (the approximate construction without sampling).

The merged representation is what keeps the distributed intersection of
Algorithm 3 tractable *and* exact; per-point boxes are cheaper to build
but under-cover (Fig. 16's shaded miss) and can produce more pieces
after intersection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approx import approximate_anti_dominance_region, sample_dsl_thresholds
from repro.core.safe_region import anti_dominance_region
from repro.geometry.box import Box
from repro.geometry.transform import to_query_space
from repro.index.scan import ScanIndex
from repro.skyline.dynamic import dynamic_skyline_indices

UNIT = Box([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(31)
    pts = rng.uniform(0, 1, size=(5_000, 2))
    origins = rng.uniform(0.2, 0.8, size=(20, 2))
    return ScanIndex(pts), pts, origins


def test_ablation_staircase_regions(benchmark, case):
    idx, _pts, origins = case
    regions = benchmark(
        lambda: [anti_dominance_region(idx, o, UNIT) for o in origins]
    )
    benchmark.extra_info["mean_boxes"] = float(
        np.mean([len(r) for r in regions])
    )


def test_ablation_per_point_regions(benchmark, case):
    idx, pts, origins = case

    def run():
        regions = []
        for origin in origins:
            dsl = dynamic_skyline_indices(pts, origin)
            thresholds = to_query_space(pts[dsl], origin)
            sampled, minima = sample_dsl_thresholds(
                thresholds, k=len(thresholds), sort_dim=0
            )
            regions.append(
                approximate_anti_dominance_region(origin, sampled, minima, UNIT)
            )
        return regions

    regions = benchmark(run)
    benchmark.extra_info["mean_boxes"] = float(
        np.mean([len(r) for r in regions])
    )


def test_ablation_coverage_gap(case):
    """The per-point union loses area relative to the exact staircase."""
    idx, pts, origins = case
    gaps = []
    for origin in origins[:8]:
        exact = anti_dominance_region(idx, origin, UNIT)
        dsl = dynamic_skyline_indices(pts, origin)
        thresholds = to_query_space(pts[dsl], origin)
        sampled, minima = sample_dsl_thresholds(
            thresholds, k=len(thresholds), sort_dim=0
        )
        approx = approximate_anti_dominance_region(origin, sampled, minima, UNIT)
        exact_area = exact.measure()
        approx_area = approx.measure()
        assert approx_area <= exact_area + 1e-9
        gaps.append(exact_area - approx_area)
    assert max(gaps) >= 0.0
