"""Sharded multiprocess kernels vs the single-process execution path.

The shard layer claims three things worth pricing:

* fan-out never changes answers — every per-probe result (RSL
  positions, membership masks, canonical safe-region boxes, exact
  areas) is asserted bit-identical across the single-process arm and
  both sharded backends before any timing is reported;
* the process pool amortises — on a machine with several cores the
  ``sharded-process`` arm should beat ``single`` once the kernel work
  dwarfs the fan-out overhead (shared-memory publish, payload pickling,
  result merge).  On a 1-CPU machine there is nothing to amortise and
  the honest result is a slowdown, which this benchmark records rather
  than hides (the ``env`` block carries ``cpu_count`` so readers can
  tell which regime a JSON artifact came from);
* ``planner="auto"`` only fans out when it wins — per cell the auto arm
  is compared against the best fixed arm and must stay within 1.05x.

Entry points::

    PYTHONPATH=src python benchmarks/bench_sharding.py           # full grid
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke   # CI, tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box
from repro.kernels.parallel import available_cpus

BENCH_SEED = 7

FULL_GRID = [2_000, 8_000, 20_000]
SMOKE_GRID = [500]


def _arms(shards: int) -> dict[str, dict]:
    return {
        "single": dict(planner="fixed", shards=1),
        "sharded-serial": dict(
            planner="fixed", shards=shards, shard_backend="serial"
        ),
        "sharded-process": dict(
            planner="fixed", shards=shards, shard_backend="process"
        ),
        "auto": dict(planner="auto", shards=shards),
    }


def _engine(points: np.ndarray, **config_kwargs) -> WhyNotEngine:
    d = points.shape[1]
    return WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(**config_kwargs),
        bounds=Box(np.zeros(d), np.ones(d)),
    )


def _canonical_boxes(safe_region):
    """The maximal box set, lexsorted — fold-order invariant, unlike the
    raw simplify output which can keep redundant zero-volume boxes."""
    lo = np.asarray(safe_region.region.lo)
    hi = np.asarray(safe_region.region.hi)
    keep = np.ones(lo.shape[0], dtype=bool)
    for i in range(lo.shape[0]):
        if not keep[i]:
            continue
        for j in range(lo.shape[0]):
            if i == j or not keep[j]:
                continue
            if np.all(lo[j] >= lo[i]) and np.all(hi[j] <= hi[i]):
                same = np.array_equal(lo[j], lo[i]) and np.array_equal(
                    hi[j], hi[i]
                )
                if not same or j > i:
                    keep[j] = False
    lo, hi = lo[keep], hi[keep]
    order = np.lexsort(np.hstack([lo, hi]).T[::-1])
    return lo[order], hi[order]


def _workload(engine: WhyNotEngine, probes: np.ndarray, mask_rows: int):
    """One pass over the sharded surfaces; returns the comparison payload."""
    out = []
    everyone = list(range(min(engine.customers.shape[0], mask_rows)))
    for q in probes:
        rsl = engine.reverse_skyline(q)
        mask = engine.membership_mask(everyone, q)
        sr = engine.safe_region(q)
        lo, hi = _canonical_boxes(sr)
        out.append(
            (rsl.tolist(), mask.tolist(), lo.tolist(), hi.tolist(), sr.area())
        )
    return out


def warmup(shards: int) -> None:
    """One untimed tiny pass per arm so the first timed cell does not
    charge process warmup (allocator, pool forks) to any one arm."""
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(150, 2))
    probes = rng.uniform(0.25, 0.75, size=(1, 2))
    for kwargs in _arms(shards).values():
        engine = _engine(points, **kwargs)
        _workload(engine, probes, mask_rows=64)
        engine.close_shard_executors()


def run_cell(
    n: int, shards: int, probe_count: int, mask_rows: int, repeats: int
) -> dict:
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(n, 2))
    probes = np.random.default_rng(BENCH_SEED + 1).uniform(
        0.25, 0.75, size=(probe_count, 2)
    )

    row: dict = {
        "n": n,
        "d": 2,
        "shards": shards,
        "probes": probe_count,
        "repeats": repeats,
    }
    payloads = {}
    for arm, kwargs in _arms(shards).items():
        # Fresh engine per repeat so every repeat measures the cold
        # (cache-less) pass; min-of-repeats is the noise-robust
        # estimator single-shot timings on a busy machine are not.
        cold_times = []
        for rep in range(repeats):
            engine = _engine(points, **kwargs)
            t0 = time.perf_counter()
            cold = _workload(engine, probes, mask_rows)
            cold_times.append(time.perf_counter() - t0)
            if arm not in payloads:
                payloads[arm] = cold
            else:
                assert cold == payloads[arm], f"{arm}: repeats diverged"
            if rep != repeats - 1:
                engine.close_shard_executors()
        t0 = time.perf_counter()
        warm = _workload(engine, probes, mask_rows)
        warm_s = time.perf_counter() - t0
        assert warm == payloads[arm], f"{arm}: warm pass diverged"
        row[f"{arm}_cold_s"] = round(min(cold_times), 6)
        row[f"{arm}_cold_all_s"] = [round(t, 6) for t in cold_times]
        row[f"{arm}_warm_s"] = round(warm_s, 6)
        # The counter fingerprint proves which path actually ran: the
        # sharded arms must fan out, the single and (on few cores)
        # auto arms must not.
        row[f"{arm}_shard_counters"] = {
            key: int(value)
            for key, value in engine.shard_stats.snapshot().items()
        }
        engine.close_shard_executors()
    baseline = payloads["single"]
    for arm, payload in payloads.items():
        assert payload == baseline, f"arm {arm} diverged from single-process"
    row["divergence_check"] = (
        "exact (RSL + masks + canonical SR boxes + exact area) per arm"
    )
    for arm in ("sharded-serial", "sharded-process"):
        counters = row[f"{arm}_shard_counters"]
        assert counters["fanouts"] > 0, (arm, counters)
        assert counters["merged"] == counters["fanouts"], (arm, counters)
    best_fixed = min(
        row["single_cold_s"],
        row["sharded-serial_cold_s"],
        row["sharded-process_cold_s"],
    )
    row["auto_vs_best_fixed"] = round(row["auto_cold_s"] / best_fixed, 3)
    row["process_speedup_vs_single"] = round(
        row["single_cold_s"] / row["sharded-process_cold_s"], 3
    )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="dataset sizes (rows); default: built-in grid",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--probes", type=int, default=3)
    parser.add_argument(
        "--mask-rows", type=int, default=512,
        help="customers per membership_mask call",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold-pass repeats per arm; min is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny grid, assertions only"
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_GRID if args.smoke else FULL_GRID)
    repeats = 1 if args.smoke else max(1, args.repeats)
    warmup(args.shards)
    rows = []
    for n in sizes:
        row = run_cell(n, args.shards, args.probes, args.mask_rows, repeats)
        rows.append(row)
        print(
            f"n={n} shards={args.shards}: single {row['single_cold_s']:.3f}s, "
            f"serial {row['sharded-serial_cold_s']:.3f}s, "
            f"process {row['sharded-process_cold_s']:.3f}s "
            f"({row['process_speedup_vs_single']}x vs single), "
            f"auto {row['auto_cold_s']:.3f}s "
            f"(auto/best-fixed {row['auto_vs_best_fixed']}x)"
        )
        if not args.smoke:
            # Auto must track the best fixed arm: with the fan-out term
            # in the cost model it declines to shard when sharding
            # loses (e.g. on a 1-CPU machine).
            assert row["auto_vs_best_fixed"] <= 1.05, row

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": (
            "sharded multiprocess kernels vs single-process execution"
        ),
        "methodology": "see EXPERIMENTS.md, section 'Sharded execution'",
        "seed": BENCH_SEED,
        "shards": args.shards,
        "available_cpus": available_cpus(),
        "env": bench_environment(),
        "arms": {
            name: dict(kwargs) for name, kwargs in _arms(args.shards).items()
        },
        "results": rows,
    }
    out = (
        args.out
        or Path(__file__).resolve().parent.parent / "BENCH_sharding.json"
    )
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
