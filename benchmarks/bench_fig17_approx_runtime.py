"""Figure 17 — execution time with pre-computed approximate DSLs.

The paper's payoff: the approximate safe region collapses the MWQ cost
("from mins to secs").  At benchmark scale the same shape appears as a
large multiple between exact and approximate pipeline times.
"""

from __future__ import annotations

import time

from conftest import fresh_engine_like


def test_fig17_approx_mwq_phase(benchmark, cardb_engine, cardb_workload):
    store = cardb_engine.approx_store(10)
    for wq in cardb_workload:
        store.precompute(wq.rsl_positions.tolist())  # Offline pass.

    benchmark(
        lambda: [
            cardb_engine.modify_both(
                wq.why_not_position, wq.query, approximate=True, k=10
            )
            for wq in cardb_workload
        ]
    )


def test_fig17_speedup_over_exact(benchmark, cardb_engine, cardb_workload):
    store = cardb_engine.approx_store(10)
    for wq in cardb_workload:
        store.precompute(wq.rsl_positions.tolist())

    def run():
        exact_engine = fresh_engine_like(cardb_engine)
        t0 = time.perf_counter()
        for wq in cardb_workload:
            exact_engine.modify_both(wq.why_not_position, wq.query)
        exact = time.perf_counter() - t0

        # Fresh engine with cold caches but the (offline) pre-computed
        # DSL store transplanted — exactly the paper's online cost.
        approx_engine = fresh_engine_like(cardb_engine)
        approx_engine._approx_stores[10] = store
        t0 = time.perf_counter()
        for wq in cardb_workload:
            approx_engine.modify_both(
                wq.why_not_position, wq.query, approximate=True, k=10
            )
        approx = time.perf_counter() - t0
        return exact, approx

    exact, approx = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["exact_s"] = float(f"{exact:.6g}")
    benchmark.extra_info["approx_s"] = float(f"{approx:.6g}")
    benchmark.extra_info["speedup"] = float(f"{exact / max(approx, 1e-9):.3g}")
    assert approx < exact  # The whole point of Section VI.B.
