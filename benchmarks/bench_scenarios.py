"""Preference scenarios: weighted dominance across the planner arms.

The preference-model refactor claims the weighted paths are not a
bolt-on: every operator the planner can pick must answer weighted
queries exactly, and the cost-based planner must keep tracking the
best pinned strategy *per weight shape* — partial support shrinks the
effective dimensionality, which shifts where the kernel/naive
crossover sits, and the cost model sees that through
``DatasetStats.effective_d``.

This benchmark sweeps weight-skew scenarios (unit spelled two ways,
mild and heavy magnitude skew, partial support) over the planner arms
of ``bench_planner.py``:

* every per-query answer (RSL positions, membership masks, safe-region
  boxes, culprit sets) is asserted bit-identical across the arms, so
  the timings price provably equal work;
* on small cells each scenario is additionally checked against the
  brute-force weighted oracle from ``repro.prefs.oracle``;
* per ``(cell, scenario)`` the ``auto`` arm must stay within 1.05x of
  the best pinned arm (min-of-repeats timing; asserted in full runs).

Entry points::

    PYTHONPATH=src python benchmarks/bench_scenarios.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke    # CI, tiny
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box
from repro.prefs.oracle import oracle_membership, oracle_reverse_skyline

BENCH_SEED = 7

FULL_GRID = [(500, 500, 2), (1_500, 1_500, 2), (1_000, 1_000, 3)]
SMOKE_GRID = [(200, 200, 2)]

ARMS = {
    "auto": dict(planner="auto"),
    "always-kernel": dict(planner="fixed", batch_kernels=True),
    "always-naive": dict(planner="fixed", batch_kernels=False),
}


def weight_scenarios(d: int) -> dict:
    """Weight shapes swept per cell, keyed by scenario name."""
    return {
        "unit": None,
        "ones": [1.0] * d,
        "mild-skew": [2.0] + [0.5] * (d - 1),
        "heavy-skew": [8.0] + [0.125] * (d - 1),
        "partial": [1.0] * (d - 1) + [0.0],
    }


def _engine(points: np.ndarray, customers, **config_kwargs) -> WhyNotEngine:
    d = points.shape[1]
    return WhyNotEngine(
        points,
        customers=customers,
        backend="scan",
        config=WhyNotConfig(**config_kwargs),
        bounds=Box(np.zeros(d), np.ones(d)),
    )


def _workload(engine: WhyNotEngine, probes: np.ndarray, weights):
    """One weighted pass over every read surface; comparison payload."""
    out = []
    m = engine.customers.shape[0]
    everyone = list(range(m))
    for q in probes:
        rsl = engine.reverse_skyline(q, weights=weights)
        mask = engine.membership_mask(everyone, q, weights=weights)
        sr = engine.safe_region(q, weights=weights)
        exp = engine.explain(0, q, weights=weights)
        out.append(
            (
                rsl.tolist(),
                mask.tolist(),
                sr.region.lo.tolist(),
                sr.region.hi.tolist(),
                sorted(int(i) for i in exp.culprit_positions),
            )
        )
    return out


def _oracle_check(points, customers, probes, weights, payload) -> None:
    """Small-cell ground truth: RSL + membership vs the nested loops."""
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    for q, (rsl, mask, *_rest) in zip(probes, payload):
        expected = sorted(
            oracle_reverse_skyline(points, customers, q, weights=w).tolist()
        )
        assert sorted(rsl) == expected, (q, rsl, expected)
        for i, member in enumerate(mask):
            assert member == oracle_membership(
                points, customers[i], q, weights=w
            ), (q, i)


def warmup() -> None:
    """One untimed tiny pass per arm: keep process warmup out of the
    first timed (cell, scenario) pair."""
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(120, 2))
    customers = rng.uniform(0.0, 1.0, size=(80, 2))
    probes = rng.uniform(0.25, 0.75, size=(1, 2))
    for kwargs in ARMS.values():
        eng = _engine(points, customers, **kwargs)
        _workload(eng, probes, [2.0, 0.5])
        eng.close()


def run_cell(
    n: int, m: int, d: int, probe_count: int, repeats: int, smoke: bool
) -> list:
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(n, d))
    customers = rng.uniform(0.0, 1.0, size=(m, d))
    probes = np.random.default_rng(BENCH_SEED + 1).uniform(
        0.25, 0.75, size=(probe_count, d)
    )

    rows = []
    for scenario, weights in weight_scenarios(d).items():
        row: dict = {
            "n": n,
            "m": m,
            "d": d,
            "scenario": scenario,
            "weights": weights,
            "probes": probe_count,
        }
        payloads = {}
        best = {arm: float("inf") for arm in ARMS}
        # Interleave the arms round-robin so machine drift (frequency
        # scaling, background load) hits every arm alike instead of
        # whichever happened to run last.
        for _ in range(repeats):
            for arm, kwargs in ARMS.items():
                # A fresh engine per repeat: cold caches, so the timing
                # prices the operators, not the result cache.
                engine = _engine(points, customers, **kwargs)
                t0 = time.perf_counter()
                payloads[arm] = _workload(engine, probes, weights)
                best[arm] = min(best[arm], time.perf_counter() - t0)
                engine.close()
        for arm in ARMS:
            row[f"{arm}_s"] = round(best[arm], 6)
        baseline = payloads["auto"]
        for arm, payload in payloads.items():
            assert payload == baseline, (
                f"{scenario}: arm {arm} diverged from auto answers"
            )
        row["divergence_check"] = (
            "exact (RSL + masks + SR boxes + culprits) per arm"
        )
        if n <= 500:
            _oracle_check(points, customers, probes, weights, baseline)
            row["oracle_check"] = "exact (RSL + membership vs brute force)"
        best_pinned = min(row["always-kernel_s"], row["always-naive_s"])
        row["auto_vs_best_pinned"] = round(row["auto_s"] / best_pinned, 3)
        rows.append(row)
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid",
        type=int,
        nargs=3,
        action="append",
        metavar=("N", "M", "D"),
        default=None,
        help="add an (n, m, d) cell; repeatable (default: built-in grid)",
    )
    parser.add_argument("--probes", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny grid, assertions only"
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    grid = (
        [tuple(cell) for cell in args.grid]
        if args.grid
        else (SMOKE_GRID if args.smoke else FULL_GRID)
    )
    repeats = 1 if args.smoke else max(1, args.repeats)
    warmup()
    rows = []
    cells = []
    for n, m, d in grid:
        cell_rows = run_cell(n, m, d, args.probes, repeats, args.smoke)
        for row in cell_rows:
            rows.append(row)
            print(
                f"n={n} m={m} d={d} {row['scenario']}: "
                f"auto {row['auto_s']:.3f}s, "
                f"kernel {row['always-kernel_s']:.3f}s, "
                f"naive {row['always-naive_s']:.3f}s "
                f"(auto/best-pinned {row['auto_vs_best_pinned']}x)"
            )
        # The acceptance bar, over the whole skew sweep of the cell:
        # the cost model must keep ranking the operators correctly
        # under every weight shape.  Aggregated across scenarios so a
        # single-row timing wobble (auto and always-kernel run the
        # same plan, so their gap is pure noise) cannot fail the run.
        auto_total = sum(r["auto_s"] for r in cell_rows)
        pinned_total = min(
            sum(r["always-kernel_s"] for r in cell_rows),
            sum(r["always-naive_s"] for r in cell_rows),
        )
        cell_ratio = round(auto_total / pinned_total, 3)
        cells.append(
            {
                "n": n,
                "m": m,
                "d": d,
                "auto_s": round(auto_total, 6),
                "best_pinned_s": round(pinned_total, 6),
                "auto_vs_best_pinned": cell_ratio,
            }
        )
        print(f"n={n} m={m} d={d} sweep: auto/best-pinned {cell_ratio}x")
        if not args.smoke:
            assert cell_ratio <= 1.05, cells[-1]

    # Work-counter fingerprint: one instrumented pass outside the timed
    # loops, recording the preference-resolution traffic.
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(200, 2))
    customers = rng.uniform(0.0, 1.0, size=(200, 2))
    probes = np.random.default_rng(BENCH_SEED + 1).uniform(
        0.25, 0.75, size=(2, 2)
    )
    fingerprint_engine = _engine(points, customers, planner="auto")
    for weights in weight_scenarios(2).values():
        _workload(fingerprint_engine, probes, weights)
    obs = {
        key: fingerprint_engine.obs.counter(key).value
        for key in (
            "prefs.default_requests",
            "prefs.weighted_requests",
            "prefs.cache_bypass",
        )
    }
    fingerprint_engine.close()

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": (
            "preference scenarios: weight-skew sweep across planner arms"
        ),
        "methodology": "see EXPERIMENTS.md, section 'Preference scenarios'",
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "arms": {name: dict(kwargs) for name, kwargs in ARMS.items()},
        "obs": obs,
        "results": rows,
        "cells": cells,
    }
    out = (
        args.out
        or Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
    )
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
