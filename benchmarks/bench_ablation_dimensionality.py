"""Ablation: the why-not pipeline beyond the paper's two dimensions.

The paper evaluates on (price, mileage) only; our substrates are any-d
and the safe region falls back to a conservative construction for d > 2
(DESIGN.md §6).  This bench measures how the pipeline scales with
dimensionality and asserts that the conservative region still never
loses a customer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import WhyNotEngine
from repro.data.synthetic import generate_uniform
from repro.data.workload import build_workload


# Reverse skylines grow quickly with dimensionality (the curse of
# dimensionality applies to dominance), so each d gets its own |RSL|
# targets and the workload builder accepts the first sizes it finds.
TARGETS_BY_DIM = {2: (1, 2, 3), 3: tuple(range(10, 31)), 4: tuple(range(35, 71))}


def make_case(dim, n=800, seed=5):
    ds = generate_uniform(n, dim=dim, seed=seed)
    engine = WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)
    workload = build_workload(
        engine, targets=TARGETS_BY_DIM[dim], seed=seed, patience=120
    )
    return engine, workload[:3]


@pytest.mark.parametrize("dim", [2, 3, 4])
def test_ablation_pipeline_by_dimension(benchmark, dim):
    engine, workload = make_case(dim)
    if not workload:
        pytest.skip(f"no workload found in {dim}-d")

    def run():
        out = []
        for wq in workload:
            mwp = engine.modify_why_not_point(wq.why_not_position, wq.query)
            mwq = engine.modify_both(wq.why_not_position, wq.query)
            out.append((mwp.best().cost, mwq.cost))
        return out

    rows = benchmark(run)
    benchmark.extra_info["dim"] = dim
    benchmark.extra_info["rows"] = [(round(a, 6), round(b, 6)) for a, b in rows]
    for mwp_cost, mwq_cost in rows:
        assert mwq_cost <= mwp_cost + 1e-9


@pytest.mark.parametrize("dim", [3, 4])
def test_ablation_conservative_safe_region_loses_nobody(dim):
    """Lemma 2 under the d>2 conservative construction."""
    engine, workload = make_case(dim)
    if not workload:
        pytest.skip(f"no workload found in {dim}-d")
    rng = np.random.default_rng(0)
    for wq in workload:
        sr = engine.safe_region(wq.query)
        if sr.region.is_empty():
            continue
        for q_star in sr.region.sample_points(rng, 10):
            assert engine.lost_customers(wq.query, q_star).size == 0
