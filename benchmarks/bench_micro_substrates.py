"""Micro-benchmarks of the substrates: skyline kernels, dynamic skyline,
BBS, and the R*-tree paths the higher layers lean on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.rtree import RTree
from repro.skyline.algorithms import skyline_indices
from repro.skyline.bbs import bbs_dynamic_skyline
from repro.skyline.dynamic import dynamic_skyline_indices


@pytest.fixture(scope="module")
def big_points():
    rng = np.random.default_rng(41)
    return rng.uniform(0, 1, size=(100_000, 2))


@pytest.fixture(scope="module")
def anti_points():
    rng = np.random.default_rng(42)
    base = rng.uniform(0, 1, size=(50_000, 1))
    pts = np.column_stack([base[:, 0], 1 - base[:, 0]])
    return np.clip(pts + rng.normal(0, 0.05, size=pts.shape), 0, 1)


def test_micro_skyline_2d_uniform(benchmark, big_points):
    result = benchmark(skyline_indices, big_points)
    benchmark.extra_info["skyline_size"] = int(result.size)


def test_micro_skyline_2d_anticorrelated(benchmark, anti_points):
    result = benchmark(skyline_indices, anti_points)
    benchmark.extra_info["skyline_size"] = int(result.size)


def test_micro_skyline_4d(benchmark):
    rng = np.random.default_rng(43)
    pts = rng.uniform(0, 1, size=(20_000, 4))
    result = benchmark(skyline_indices, pts)
    benchmark.extra_info["skyline_size"] = int(result.size)


def test_micro_dynamic_skyline(benchmark, big_points):
    origin = np.array([0.5, 0.5])
    result = benchmark(dynamic_skyline_indices, big_points, origin)
    benchmark.extra_info["dsl_size"] = int(result.size)


def test_micro_bbs_dynamic_skyline(benchmark, big_points):
    tree = RTree(big_points)
    origin = np.array([0.5, 0.5])
    result = benchmark(bbs_dynamic_skyline, tree, origin)
    benchmark.extra_info["dsl_size"] = int(result.size)


def test_micro_bbs_matches_scan(big_points):
    tree = RTree(big_points)
    origin = np.array([0.5, 0.5])
    assert np.array_equal(
        bbs_dynamic_skyline(tree, origin),
        dynamic_skyline_indices(big_points, origin),
    )


def test_micro_bnl_skyline(benchmark):
    from repro.skyline.bnl import bnl_skyline_indices

    rng = np.random.default_rng(44)
    pts = rng.uniform(0, 1, size=(5_000, 2))
    result = benchmark(bnl_skyline_indices, pts, 64)
    benchmark.extra_info["skyline_size"] = int(result.size)


def test_micro_dnc_skyline(benchmark):
    from repro.skyline.dnc import dnc_skyline_indices

    rng = np.random.default_rng(45)
    pts = rng.uniform(0, 1, size=(20_000, 2))
    result = benchmark(dnc_skyline_indices, pts)
    benchmark.extra_info["skyline_size"] = int(result.size)


def test_micro_kskyband(benchmark):
    from repro.extensions.kskyband import kskyband_indices

    rng = np.random.default_rng(46)
    pts = rng.uniform(0, 1, size=(4_000, 2))
    result = benchmark(kskyband_indices, pts, 4)
    benchmark.extra_info["band_size"] = int(result.size)


def test_micro_all_skyline_algorithms_agree():
    from repro.skyline.bnl import bnl_skyline_indices
    from repro.skyline.dnc import dnc_skyline_indices

    rng = np.random.default_rng(47)
    pts = rng.uniform(0, 1, size=(3_000, 2))
    reference = skyline_indices(pts)
    assert np.array_equal(bnl_skyline_indices(pts), reference)
    assert np.array_equal(dnc_skyline_indices(pts), reference)
