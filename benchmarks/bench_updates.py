"""Update churn: incremental index + cache maintenance vs rebuild.

The versioned store layer claims that a mutating market is served best by
*repairing* what a mutation can reach (window locality) instead of
rebuilding the engine.  This benchmark prices that claim end to end:

* ``incremental_s`` — one engine absorbs every mutation through
  ``insert_products`` / ``delete_products`` / ``update_products`` and
  re-answers a fixed probe set (reverse skyline + safe region) after
  each one.  Scoped invalidation keeps unaffected cache entries warm.
* ``rebuild_s`` — the pre-store workflow: after every mutation a fresh
  engine is built over the current matrices and the probes are answered
  cold.

Every per-round answer (reverse-skyline positions, safe-region boxes) is
asserted bit-identical between the two arms, so the speedup is measured
over provably equal work.  A second section prices the observability
layer on the mutation path: the same incremental churn with
``trace=True`` vs ``trace=False``, plus an interleaved disabled/disabled
A/B whose spread is the noise floor the documented <2% disabled-tracer
bound is checked against.

Entry points::

    PYTHONPATH=src python benchmarks/bench_updates.py            # full, 10k
    PYTHONPATH=src python benchmarks/bench_updates.py --smoke    # CI, 300
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box

BENCH_SEED = 7


def _dataset(n: int, d: int, seed: int = BENCH_SEED) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, d))


def _probes(d: int, count: int, seed: int = BENCH_SEED + 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.25, 0.75, size=(count, d))


def _engine(points: np.ndarray, config: WhyNotConfig) -> WhyNotEngine:
    d = points.shape[1]
    return WhyNotEngine(
        points, backend="scan", config=config, bounds=Box(np.zeros(d), np.ones(d))
    )


def _mutation_script(rounds: int, d: int, seed: int = BENCH_SEED + 2):
    """A reproducible single-product churn: each round inserts, deletes
    or updates ONE product.  Deletes/updates draw a *fraction* in
    ``[0, 1)`` that each arm scales by its current row count, so both
    arms replay the identical script regardless of when they run."""
    rng = np.random.default_rng(seed)
    script = []
    for step in range(rounds):
        kind = ("insert", "delete", "update")[step % 3]
        script.append(
            (kind, float(rng.random()), rng.uniform(0.0, 1.0, size=(1, d)))
        )
    return script


def _apply(engine: WhyNotEngine, kind: str, fraction: float, row: np.ndarray):
    n = engine.products.shape[0]
    if kind == "insert":
        engine.insert_products(row)
    elif kind == "delete":
        engine.delete_products([int(fraction * n)])
    else:
        engine.update_products([int(fraction * n)], row)


def _answers(engine: WhyNotEngine, probes: np.ndarray):
    """The per-round comparison payload: RSL positions and SR boxes."""
    out = []
    for q in probes:
        rsl = engine.reverse_skyline(q)
        sr = engine.safe_region(q)
        out.append((rsl.tolist(), sr.region.lo.tolist(), sr.region.hi.tolist()))
    return out


def churn_incremental(
    points: np.ndarray, script, probes: np.ndarray, config: WhyNotConfig
):
    """One engine, mutations absorbed in place; timed after warm-up."""
    engine = _engine(points, config)
    _answers(engine, probes)  # warm every cache layer
    rounds = []
    t0 = time.perf_counter()
    for kind, fraction, row in script:
        _apply(engine, kind, fraction, row)
        rounds.append(_answers(engine, probes))
    elapsed = time.perf_counter() - t0
    return elapsed, rounds, engine


def churn_rebuild(
    points: np.ndarray, script, probes: np.ndarray, config: WhyNotConfig
):
    """Fresh engine per mutation, probes answered cold — the baseline."""
    engine = _engine(points, config)  # mutation carrier only
    rounds = []
    t0 = time.perf_counter()
    for kind, fraction, row in script:
        _apply(engine, kind, fraction, row)
        fresh = _engine(engine.products, config)
        rounds.append(_answers(fresh, probes))
    elapsed = time.perf_counter() - t0
    return elapsed, rounds


def run_churn(n: int, d: int, rounds: int, probe_count: int) -> dict:
    points = _dataset(n, d)
    probes = _probes(d, probe_count)
    script = _mutation_script(rounds, d)
    config = WhyNotConfig()

    inc_s, inc_rounds, engine = churn_incremental(points, script, probes, config)
    reb_s, reb_rounds = churn_rebuild(points, script, probes, config)
    assert inc_rounds == reb_rounds, (
        "incremental churn diverged from rebuild-per-mutation"
    )

    idx = engine.index.stats.snapshot()
    return {
        "n": n,
        "m": n,
        "d": d,
        "rounds": rounds,
        "probes": probe_count,
        "incremental_s": round(inc_s, 6),
        "rebuild_s": round(reb_s, 6),
        "speedup": round(reb_s / inc_s, 2),
        "per_mutation_incremental_ms": round(1e3 * inc_s / rounds, 3),
        "per_mutation_rebuild_ms": round(1e3 * reb_s / rounds, 3),
        "index_incremental_ops": int(
            idx["incremental_inserts"]
            + idx["incremental_removes"]
            + idx["incremental_updates"]
        ),
        "index_rebuilds": int(idx["rebuilds"]),
        "cache_scoped_considered": int(engine._scoped_considered.value),
        "cache_evicted_scoped": int(engine._scoped_evicted.value),
        "cache_retained_scoped": int(engine._scoped_retained.value),
        "cache_repaired_scoped": int(engine._scoped_repaired.value),
        "divergence_check": "exact (RSL positions + SR boxes) per round",
    }


def run_tracer_ab(n: int, d: int, rounds: int, probe_count: int) -> dict:
    """Price the obs layer on the mutation path.

    Interleaved best-of-3: two disabled arms (their spread is the noise
    floor) and one enabled arm.  The documented disabled-tracer bound
    (<2%, docs/OBSERVABILITY.md) is about the *disabled* fast path: the
    mutation span/counter sites must stay attribute-lookup cheap, so the
    disabled/disabled spread must remain within the bound.
    """
    points = _dataset(n, d)
    probes = _probes(d, probe_count)
    script = _mutation_script(rounds, d)
    off, off2, on = [], [], []
    for _ in range(3):
        off.append(
            churn_incremental(points, script, probes, WhyNotConfig())[0]
        )
        on.append(
            churn_incremental(points, script, probes, WhyNotConfig(trace=True))[0]
        )
        off2.append(
            churn_incremental(points, script, probes, WhyNotConfig())[0]
        )
    disabled_s, disabled2_s, enabled_s = min(off), min(off2), min(on)
    noise_pct = 100.0 * abs(disabled_s - disabled2_s) / min(
        disabled_s, disabled2_s
    )
    overhead_pct = 100.0 * (enabled_s - min(disabled_s, disabled2_s)) / min(
        disabled_s, disabled2_s
    )
    return {
        "disabled_s": round(disabled_s, 6),
        "disabled_repeat_s": round(disabled2_s, 6),
        "enabled_s": round(enabled_s, 6),
        "disabled_ab_noise_pct": round(noise_pct, 2),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "bound": "disabled/disabled spread must stay <2% (noise floor)",
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--probes", type=int, default=4)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny size, equality assertions only (no speedup/noise gates)",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.size = min(args.size, 300)
        args.rounds = min(args.rounds, 6)

    row = run_churn(args.size, args.dim, args.rounds, args.probes)
    print(
        f"churn n=m={row['n']} d={row['d']} ({row['rounds']} single-product "
        f"mutations, {row['probes']} probes/round): "
        f"incremental {row['incremental_s']:.3f}s "
        f"({row['per_mutation_incremental_ms']:.1f} ms/mutation), "
        f"rebuild {row['rebuild_s']:.3f}s "
        f"({row['per_mutation_rebuild_ms']:.1f} ms/mutation) "
        f"-> {row['speedup']}x"
    )
    print(
        f"  index: {row['index_incremental_ops']} incremental ops, "
        f"{row['index_rebuilds']} rebuilds; caches: "
        f"{row['cache_retained_scoped']} retained / "
        f"{row['cache_evicted_scoped']} evicted / "
        f"{row['cache_repaired_scoped']} repaired"
    )
    tracer = run_tracer_ab(
        args.size, args.dim, max(2, args.rounds // 3), args.probes
    )
    print(
        f"  obs: disabled {tracer['disabled_s']:.3f}s vs enabled "
        f"{tracer['enabled_s']:.3f}s (+{tracer['enabled_overhead_pct']}%), "
        f"disabled A/B noise {tracer['disabled_ab_noise_pct']}%"
    )
    if not args.smoke:
        assert row["speedup"] >= 5.0, (
            f"incremental churn must beat rebuild-per-mutation by >=5x, "
            f"got {row['speedup']}x"
        )
        assert tracer["disabled_ab_noise_pct"] < 2.0, tracer

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": "update churn: incremental store/index/cache maintenance vs rebuild-per-mutation",
        "methodology": "see EXPERIMENTS.md, section 'Update churn'",
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "churn": row,
        "tracer_ab": tracer,
    }
    out = args.out or Path(__file__).resolve().parent.parent / "BENCH_updates.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
