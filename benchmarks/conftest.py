"""Shared benchmark fixtures.

Benchmarks run on scaled-down datasets (hundreds to a few thousand rows)
so the whole suite finishes in minutes; the CLI harness (`repro-whynot
<experiment> --full`) reproduces the paper's original sizes.  Sizes are
chosen so every *shape* the paper reports is still visible: SR dominates
MWQ, Approx-MWQ collapses it, BBRS beats the naive scan, and so on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import WhyNotEngine
from repro.data.cardb import generate_cardb
from repro.data.synthetic import (
    generate_anticorrelated,
    generate_correlated,
    generate_uniform,
)
from repro.data.workload import build_workload

BENCH_SEED = 7
CARDB_SIZE = 2000
SYNTH_SIZE = 2000
TARGETS = tuple(range(1, 11))


def bench_environment() -> dict:
    """Environment provenance for benchmark artifacts.

    Every standalone benchmark runner embeds this under an ``"env"`` key
    in its ``BENCH_*.json`` so numbers stay interpretable: interpreter
    and numpy versions, platform, CPU count, git SHA, and the library
    version.  Delegates to :func:`repro.obs.environment_provenance`;
    falls back to the bare interpreter facts if ``repro.obs`` is ever
    unavailable (e.g. benchmarking an older checkout).
    """
    try:
        from repro.obs import environment_provenance

        return environment_provenance()
    except Exception:  # pragma: no cover - defensive fallback
        import platform

        return {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        }


@pytest.fixture(scope="session")
def cardb_dataset():
    return generate_cardb(CARDB_SIZE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def uniform_dataset():
    return generate_uniform(SYNTH_SIZE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def correlated_dataset():
    return generate_correlated(SYNTH_SIZE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def anticorrelated_dataset():
    return generate_anticorrelated(SYNTH_SIZE, seed=BENCH_SEED)


def build_engine(dataset, backend="scan"):
    return WhyNotEngine(dataset.points, backend=backend, bounds=dataset.bounds)


@pytest.fixture(scope="session")
def cardb_engine(cardb_dataset):
    return build_engine(cardb_dataset)


@pytest.fixture(scope="session")
def cardb_workload(cardb_engine):
    workload = build_workload(cardb_engine, targets=TARGETS, seed=BENCH_SEED)
    assert workload, "benchmark workload must not be empty"
    return workload


@pytest.fixture(scope="session")
def uniform_engine(uniform_dataset):
    return build_engine(uniform_dataset)


@pytest.fixture(scope="session")
def uniform_workload(uniform_engine):
    workload = build_workload(
        uniform_engine, targets=(1, 2, 3, 4), seed=BENCH_SEED
    )
    assert workload, "benchmark workload must not be empty"
    return workload


def fresh_engine_like(engine):
    """A new engine over the same data with cold caches, for timing the
    safe-region construction itself."""
    return WhyNotEngine(
        engine.products, backend="scan", bounds=engine.bounds
    )
