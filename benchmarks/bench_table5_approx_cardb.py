"""Table V — Approx-MWQ(k) quality against the exact methods on CarDB.

Benchmarks the approximate pipeline for the paper's two k values and
asserts the quality claims: never worse than MWP, and (by construction
of the subset safe region) never spuriously zero when exact MWQ is not.
"""

from __future__ import annotations

import pytest


def _approx_costs(engine, workload, k):
    rows = []
    for wq in workload:
        cost = engine.modify_both(
            wq.why_not_position, wq.query, approximate=True, k=k
        ).cost
        rows.append((wq.rsl_size, cost))
    return rows


@pytest.mark.parametrize("k", [10, 20])
def test_table5_approx_mwq(benchmark, cardb_engine, cardb_workload, k):
    # Offline pre-computation, as in the paper (excluded from timing).
    store = cardb_engine.approx_store(k)
    for wq in cardb_workload:
        store.precompute(wq.rsl_positions.tolist())
    rows = benchmark(_approx_costs, cardb_engine, cardb_workload, k)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["rows"] = [(s, round(c, 9)) for s, c in rows]
    for wq, (_s, cost) in zip(cardb_workload, rows):
        mwp = cardb_engine.modify_why_not_point(
            wq.why_not_position, wq.query
        ).best().cost
        assert cost <= mwp + 1e-9


def test_table5_exact_vs_approx_columns(benchmark, cardb_engine, cardb_workload):
    """The full Table-V row set (MWP, MQP movement, MWQ, Approx-MWQ)."""

    def run():
        rows = []
        for wq in cardb_workload:
            mwp = cardb_engine.modify_why_not_point(
                wq.why_not_position, wq.query
            ).best().cost
            mwq = cardb_engine.modify_both(wq.why_not_position, wq.query).cost
            approx = cardb_engine.modify_both(
                wq.why_not_position, wq.query, approximate=True, k=10
            ).cost
            rows.append((wq.rsl_size, mwp, mwq, approx))
        return rows

    rows = benchmark(run)
    benchmark.extra_info["rows"] = [
        (s, round(a, 9), round(b, 9), round(c, 9)) for s, a, b, c in rows
    ]
    # No pointwise ordering between exact and approx MWQ exists (the
    # paper's Table V(b) q4 has approx *below* exact: different corner
    # sets); the guaranteed bound is against MWP.
    for _s, mwp, _mwq, approx in rows:
        assert approx <= mwp + 1e-9
