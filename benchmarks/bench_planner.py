"""Planner modes: cost-based selection vs pinned operator sets.

The planner/executor decomposition claims three things worth pricing:

* ``planner="auto"`` never loses (much) to the best pinned strategy —
  per ``(n, m, d)`` cell the auto arm is compared against
  ``always-kernel`` (``planner="fixed"`` with ``batch_kernels=True``,
  the historical default dispatch) and ``always-naive``
  (``batch_kernels=False``: every surface runs the per-customer
  index-loop operators);
* plans are *reused* — the plan cache should absorb every repeated
  shape in a workload (hit rate near 1 after the first query of each
  shape);
* the cost model is *sane* — estimated vs. span-measured operator cost
  from EXPLAIN should agree within a couple of orders of magnitude
  (it ranks operators, it does not predict wall clock).

Every per-query answer (RSL positions, membership masks, safe-region
boxes, MWQ case + cost) is asserted bit-identical across the three
arms, so the timings price provably equal work.

Entry points::

    PYTHONPATH=src python benchmarks/bench_planner.py            # full grid
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke    # CI, tiny
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.batch import answer_why_not_batch
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box

BENCH_SEED = 7

FULL_GRID = [(500, 500, 2), (2_000, 2_000, 2), (4_000, 4_000, 2), (1_000, 1_000, 3)]
SMOKE_GRID = [(250, 250, 2)]

ARMS = {
    "auto": dict(planner="auto"),
    "always-kernel": dict(planner="fixed", batch_kernels=True),
    "always-naive": dict(planner="fixed", batch_kernels=False),
}


def _engine(points: np.ndarray, customers, **config_kwargs) -> WhyNotEngine:
    d = points.shape[1]
    return WhyNotEngine(
        points,
        customers=customers,
        backend="scan",
        config=WhyNotConfig(**config_kwargs),
        bounds=Box(np.zeros(d), np.ones(d)),
    )


def _workload(engine: WhyNotEngine, probes: np.ndarray):
    """One pass over every surface; returns the comparison payload."""
    out = []
    m = engine.customers.shape[0]
    everyone = list(range(m))
    batch_targets = list(range(min(4, m)))
    for q in probes:
        rsl = engine.reverse_skyline(q)
        mask = engine.membership_mask(everyone, q)
        sr = engine.safe_region(q)
        mwq = engine.modify_both(1, q)
        answers = answer_why_not_batch(engine, batch_targets, q)
        out.append(
            (
                rsl.tolist(),
                mask.tolist(),
                sr.region.lo.tolist(),
                sr.region.hi.tolist(),
                mwq.case.name,
                mwq.cost,
                [a.mwq.cost for a in answers],
            )
        )
    return out


def _estimation_error(engine: WhyNotEngine, q: np.ndarray) -> dict:
    """Median/worst |log10(est/actual)| over executed EXPLAIN nodes."""
    ratios = []
    target = 1
    calls = [
        ("reverse_skyline", (q,), {}),
        ("membership", (list(range(min(8, engine.customers.shape[0]))), q), {}),
        ("safe_region", (q,), {}),
        ("mwq", (target, q), {}),
    ]
    for surface, args, kwargs in calls:
        report = engine.explain_plan(surface, *args, **kwargs).validate()
        for node in report.executed_nodes():
            if node.actual_seconds and node.estimate.seconds > 0:
                ratios.append(
                    abs(math.log10(node.estimate.seconds / node.actual_seconds))
                )
    ratios.sort()
    return {
        "nodes": len(ratios),
        "median_abs_log10": round(ratios[len(ratios) // 2], 3) if ratios else None,
        "worst_abs_log10": round(ratios[-1], 3) if ratios else None,
    }


def warmup() -> None:
    """One untimed tiny-cell pass per arm so the first timed cell does
    not charge process warmup (allocator, code paths) to whichever arm
    happens to run first."""
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(120, 2))
    probes = rng.uniform(0.25, 0.75, size=(1, 2))
    for kwargs in ARMS.values():
        _workload(_engine(points, None, **kwargs), probes)


def run_cell(n: int, m: int, d: int, probe_count: int) -> dict:
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.uniform(0.0, 1.0, size=(n, d))
    customers = None if m == n else rng.uniform(0.0, 1.0, size=(m, d))
    probes = np.random.default_rng(BENCH_SEED + 1).uniform(
        0.25, 0.75, size=(probe_count, d)
    )

    payloads = {}
    row: dict = {"n": n, "m": m, "d": d, "probes": probe_count}
    auto_engine = None
    for arm, kwargs in ARMS.items():
        engine = _engine(points, customers, **kwargs)
        t0 = time.perf_counter()
        cold = _workload(engine, probes)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = _workload(engine, probes)
        warm_s = time.perf_counter() - t0
        assert cold == warm, f"{arm}: warm pass diverged from cold pass"
        payloads[arm] = cold
        row[f"{arm}_cold_s"] = round(cold_s, 6)
        row[f"{arm}_warm_s"] = round(warm_s, 6)
        if arm == "auto":
            auto_engine = engine
    baseline = payloads["auto"]
    for arm, payload in payloads.items():
        assert payload == baseline, f"arm {arm} diverged from auto answers"
    row["divergence_check"] = (
        "exact (RSL + masks + SR boxes + MWQ case/cost + batch costs) per arm"
    )

    cache = auto_engine.plan_cache
    considered = int(cache.considered.value)
    hits = int(cache.hits.value)
    misses = int(cache.misses.value)
    assert considered == hits + misses, (considered, hits, misses)
    row["plan_cache"] = {
        "considered": considered,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / considered, 4) if considered else None,
        "entries": len(cache),
    }
    row["cost_estimation"] = _estimation_error(auto_engine, probes[0])
    best_pinned = min(row["always-kernel_cold_s"], row["always-naive_cold_s"])
    row["auto_vs_best_pinned"] = round(row["auto_cold_s"] / best_pinned, 3)
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid",
        type=int,
        nargs=3,
        action="append",
        metavar=("N", "M", "D"),
        default=None,
        help="add an (n, m, d) cell; repeatable (default: built-in grid)",
    )
    parser.add_argument("--probes", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny grid, assertions only"
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    grid = (
        [tuple(cell) for cell in args.grid]
        if args.grid
        else (SMOKE_GRID if args.smoke else FULL_GRID)
    )
    warmup()
    rows = []
    for n, m, d in grid:
        row = run_cell(n, m, d, args.probes)
        rows.append(row)
        cache = row["plan_cache"]
        print(
            f"n={n} m={m} d={d}: auto {row['auto_cold_s']:.3f}s, "
            f"kernel {row['always-kernel_cold_s']:.3f}s, "
            f"naive {row['always-naive_cold_s']:.3f}s "
            f"(auto/best-pinned {row['auto_vs_best_pinned']}x); "
            f"plan-cache hit rate {cache['hit_rate']}, "
            f"cost err median 10^{row['cost_estimation']['median_abs_log10']}"
        )
        if not args.smoke:
            # Auto must track the better pinned strategy: planning is
            # cheap, so losing badly means the cost model mis-ranked.
            assert row["auto_vs_best_pinned"] <= 1.5, row
            assert cache["hit_rate"] >= 0.5, row

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": "planner modes: cost-based auto vs pinned operator sets",
        "methodology": "see EXPERIMENTS.md, section 'Planner'",
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "arms": {name: dict(kwargs) for name, kwargs in ARMS.items()},
        "results": rows,
    }
    out = args.out or Path(__file__).resolve().parent.parent / "BENCH_planner.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
