"""Table IV — quality of MWP / MQP / MWQ on UN / CO / AC synthetic data.

One benchmark per distribution, timing the full three-method comparison
and asserting the paper's shape (MWQ never worse than MWP).
"""

from __future__ import annotations

import pytest

from repro.data.workload import build_workload

from conftest import BENCH_SEED, build_engine


def _compare(engine, workload):
    rows = []
    for wq in workload:
        mwp = engine.modify_why_not_point(wq.why_not_position, wq.query).best().cost
        mqp_result = engine.modify_query_point(wq.why_not_position, wq.query)
        mqp = min(
            engine.mqp_total_cost(wq.query, cand.point)
            for cand in mqp_result.candidates
        )
        mwq = engine.modify_both(wq.why_not_position, wq.query).cost
        rows.append((wq.rsl_size, mwp, mqp, mwq))
    return rows


@pytest.fixture(
    scope="module",
    params=["uniform_dataset", "correlated_dataset", "anticorrelated_dataset"],
)
def synthetic_case(request):
    dataset = request.getfixturevalue(request.param)
    engine = build_engine(dataset)
    workload = build_workload(engine, targets=(1, 2, 3, 4), seed=BENCH_SEED)
    assert workload
    return dataset.name, engine, workload


def test_table4_three_methods(benchmark, synthetic_case):
    name, engine, workload = synthetic_case
    rows = benchmark(_compare, engine, workload)
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["rows"] = [
        (s, round(a, 9), round(b, 9), round(c, 9)) for s, a, b, c in rows
    ]
    for _s, mwp, _mqp, mwq in rows:
        assert mwq <= mwp + 1e-9
