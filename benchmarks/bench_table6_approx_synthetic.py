"""Table VI — Approx-MWQ(k=10) on the synthetic datasets."""

from __future__ import annotations

import pytest

from repro.data.workload import build_workload

from conftest import BENCH_SEED, build_engine


@pytest.fixture(
    scope="module",
    params=["uniform_dataset", "correlated_dataset", "anticorrelated_dataset"],
)
def synthetic_case(request):
    dataset = request.getfixturevalue(request.param)
    engine = build_engine(dataset)
    workload = build_workload(engine, targets=(1, 2, 3, 4), seed=BENCH_SEED)
    assert workload
    store = engine.approx_store(10)
    for wq in workload:
        store.precompute(wq.rsl_positions.tolist())
    return dataset.name, engine, workload


def test_table6_approx_mwq(benchmark, synthetic_case):
    name, engine, workload = synthetic_case

    def run():
        return [
            (
                wq.rsl_size,
                engine.modify_why_not_point(wq.why_not_position, wq.query)
                .best()
                .cost,
                engine.modify_both(
                    wq.why_not_position, wq.query, approximate=True, k=10
                ).cost,
            )
            for wq in workload
        ]

    rows = benchmark(run)
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["rows"] = [
        (s, round(mwp, 9), round(approx, 9)) for s, mwp, approx in rows
    ]
    for _s, mwp, approx in rows:
        assert approx <= mwp + 1e-9  # "no worse than MWP" (Section VI.B.2)
