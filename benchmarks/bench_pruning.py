"""Tile-summary pruned kernels vs the plain blocked kernels.

The filter-refinement layer (``repro.prune``) claims three things worth
pricing:

* pruning never changes answers — every per-probe membership mask is
  asserted bit-identical across the unpruned, always-pruned and
  auto-planned arms before any timing is reported, and the pruning
  counter balance invariant (skipped + blocked + refined == total
  pairs) is asserted on a traced pass;
* the filter pays for itself on low-selectivity workloads — on the
  ``sparse`` cell (customers clustered around the query, products in
  far clusters) the plain kernel has no early exit and sweeps every
  (tile, chunk) pair, while the classifier skips almost all of them;
  at n = m = 10k the always-pruned arm must beat the unpruned arm by
  at least 3x;
* ``planner="auto"`` only prunes when it wins — the ``dense`` cell
  (everything interleaved uniform, refine rate ~1) makes classification
  pure overhead, and per cell the auto arm is compared against the best
  fixed arm and must stay within 1.05x.

Entry points::

    PYTHONPATH=src python benchmarks/bench_pruning.py           # full grid
    PYTHONPATH=src python benchmarks/bench_pruning.py --smoke   # CI, tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.kernels.membership import batch_lambda_counts
from repro.kernels.pruned import batch_lambda_counts_pruned

BENCH_SEED = 7

FULL_GRID = [2_000, 10_000]
SMOKE_GRID = [600]

ARMS = {
    "unpruned": dict(planner="fixed", prune="off"),
    "pruned": dict(planner="fixed", prune="always"),
    "auto": dict(planner="auto", prune="auto"),
}


def make_workload(kind: str, n: int, seed: int):
    """(products, customers, probes) for one benchmark cell.

    ``sparse``: customers clustered in a tight box around the probe
    area, products split into two far clusters (first half low corner,
    second half high corner — row order keeps product chunks spatially
    coherent).  No product falls in any customer window, so the plain
    kernel never early-exits, while almost every (tile, chunk) pair is
    classifier-skippable.  ``dense``: everything interleaved uniform in
    the unit box — the adversarial refine-everything cell.
    """
    rng = np.random.default_rng(seed)
    if kind == "sparse":
        half = n // 2
        products = np.vstack(
            [
                rng.uniform(0.0, 0.1, size=(half, 2)),
                rng.uniform(0.9, 1.0, size=(n - half, 2)),
            ]
        )
        customers = rng.uniform(0.45, 0.55, size=(n, 2))
        probes = rng.uniform(0.48, 0.52, size=(3, 2))
    elif kind == "dense":
        products = rng.uniform(0.0, 1.0, size=(n, 2))
        customers = rng.uniform(0.0, 1.0, size=(n, 2))
        probes = rng.uniform(0.4, 0.6, size=(3, 2))
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(kind)
    return products, customers, probes


def _engine(products, customers, trace: bool = False, **kwargs) -> WhyNotEngine:
    config = WhyNotConfig(trace=trace, **kwargs)
    return WhyNotEngine(products, customers, backend="scan", config=config)


def _workload(engine: WhyNotEngine, probes: np.ndarray):
    everyone = list(range(engine.customers.shape[0]))
    return [engine.membership_mask(everyone, q).tolist() for q in probes]


def run_cell(kind: str, n: int, repeats: int) -> dict:
    products, customers, probes = make_workload(kind, n, BENCH_SEED)
    row: dict = {"workload": kind, "n": n, "m": n, "d": 2, "repeats": repeats}
    payloads: dict[str, list] = {}
    for arm, kwargs in ARMS.items():
        # Fresh engine per repeat: every repeat measures the cold
        # (cache-less) pass; min-of-repeats is the noise-robust
        # estimator single-shot timings on a busy machine are not.
        cold_times = []
        for _ in range(repeats):
            engine = _engine(products, customers, **kwargs)
            t0 = time.perf_counter()
            cold = _workload(engine, probes)
            cold_times.append(time.perf_counter() - t0)
            if arm not in payloads:
                payloads[arm] = cold
            else:
                assert cold == payloads[arm], f"{arm}: repeats diverged"
        t0 = time.perf_counter()
        warm = _workload(engine, probes)
        warm_s = time.perf_counter() - t0
        assert warm == payloads[arm], f"{arm}: warm pass diverged"
        row[f"{arm}_cold_s"] = round(min(cold_times), 6)
        row[f"{arm}_cold_all_s"] = [round(t, 6) for t in cold_times]
        row[f"{arm}_warm_s"] = round(warm_s, 6)
        if arm == "auto":
            row["auto_picked_operator"] = engine.last_plan.operator.name
    baseline = payloads["unpruned"]
    for arm, payload in payloads.items():
        assert payload == baseline, f"arm {arm} diverged from unpruned"
    row["divergence_check"] = "exact membership masks per arm and repeat"

    # Counter fingerprints come from a separate traced pass (tracing has
    # its own overhead, so it never pollutes the timings above).  The
    # pruned arm must satisfy the pair balance invariant, and on the
    # sparse cell it must actually skip pairs.
    traced = _engine(products, customers, trace=True, **ARMS["pruned"])
    assert _workload(traced, probes) == baseline, "traced pass diverged"
    counters = traced._prune_counters
    assert counters is not None and counters.balanced(), counters.snapshot()
    snap = counters.snapshot()
    row["pruned_counters"] = snap
    row["kernel_counters"] = traced._kernel_counters.snapshot()
    assert snap["pairs_total"] > 0, snap
    if kind == "sparse":
        assert snap["pairs_skipped"] > 0, snap

    # The Λ kernel has no early exit even unpruned, so it is timed
    # directly at kernel level (its engine surface is shard-internal).
    q = probes[0]
    t0 = time.perf_counter()
    lam_plain = batch_lambda_counts(products, customers, q)
    row["lambda_unpruned_s"] = round(time.perf_counter() - t0, 6)
    t0 = time.perf_counter()
    lam_pruned = batch_lambda_counts_pruned(products, customers, q)
    row["lambda_pruned_s"] = round(time.perf_counter() - t0, 6)
    assert np.array_equal(lam_plain, lam_pruned), "lambda counts diverged"

    best_fixed = min(row["unpruned_cold_s"], row["pruned_cold_s"])
    row["auto_vs_best_fixed"] = round(row["auto_cold_s"] / best_fixed, 3)
    row["pruned_speedup_vs_unpruned"] = round(
        row["unpruned_cold_s"] / row["pruned_cold_s"], 3
    )
    return row


def warmup() -> None:
    """One untimed tiny pass per arm so the first timed cell does not
    charge interpreter/allocator warmup to any one arm."""
    products, customers, probes = make_workload("sparse", 150, BENCH_SEED)
    for kwargs in ARMS.values():
        _workload(_engine(products, customers, **kwargs), probes[:1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="dataset sizes (rows, n = m); default: built-in grid",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold-pass repeats per arm; min is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny grid, assertions only"
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_GRID if args.smoke else FULL_GRID)
    repeats = 1 if args.smoke else max(1, args.repeats)
    warmup()
    rows = []
    for kind in ("sparse", "dense"):
        for n in sizes:
            row = run_cell(kind, n, repeats)
            rows.append(row)
            print(
                f"{kind} n=m={n}: unpruned {row['unpruned_cold_s']:.3f}s, "
                f"pruned {row['pruned_cold_s']:.3f}s "
                f"({row['pruned_speedup_vs_unpruned']}x), "
                f"auto {row['auto_cold_s']:.3f}s "
                f"(auto/best-fixed {row['auto_vs_best_fixed']}x, "
                f"picked {row['auto_picked_operator']!r})"
            )
            if not args.smoke:
                # Auto must track the best fixed arm: the selectivity
                # probe makes it decline to prune on the dense cell and
                # prune on the sparse one.
                assert row["auto_vs_best_fixed"] <= 1.05, row
                if kind == "sparse" and n >= 10_000:
                    assert row["pruned_speedup_vs_unpruned"] >= 3.0, row

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": "tile-summary pruned kernels vs plain blocked kernels",
        "methodology": "see EXPERIMENTS.md, section 'Pruned kernels'",
        "seed": BENCH_SEED,
        "env": bench_environment(),
        "arms": {name: dict(kwargs) for name, kwargs in ARMS.items()},
        "results": rows,
    }
    out = (
        args.out
        or Path(__file__).resolve().parent.parent / "BENCH_pruning.json"
    )
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
