"""Serving-layer benchmark: sustained QPS, tail latency, coalescing.

Three arms over the same mixed read/write workload (N concurrent
clients issuing why-not requests against one query point while a writer
interleaves product insertions through the service's mutation queue):

* ``coalesced`` — the service folds concurrent same-(epoch, query)
  requests into one ``answer_why_not_batch`` kernel dispatch;
* ``per-request`` — coalescing off; every request runs the full
  four-surface pipeline by itself;
* ``shedding`` — a deliberately tiny admission envelope (1 slot, short
  queue, short deadlines) under a flood, demonstrating that overload
  degrades to fast 429/503 refusals with bounded completion latency
  instead of a deadlock or an unbounded queue.

Every response served by the throughput arms is verified bit-identical
to a direct engine call on a twin engine replayed to the response's
served epoch — the benchmark *fails* on any divergence.  In full mode
the coalesced arm must beat per-request dispatch on sustained QPS at
concurrency >= 16; smoke mode (CI) keeps the assertions and drops the
speed gate.

Entry points::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI, tiny
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.batch import answer_why_not
from repro.core.engine import WhyNotEngine
from repro.serve import (
    ServeConfig,
    ShedError,
    WhyNotService,
    canonical_json,
    serialize_answer,
)

BENCH_SEED = 7
BACKEND = "grid"


def _stores(n: int, seed: int = BENCH_SEED) -> tuple:
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(n, 2))
    half = n // 2
    return points[:half], points[half:]


def _mutation_log(count: int) -> list:
    rng = np.random.default_rng(BENCH_SEED + 2)
    return [
        ("insert_products", {"points": [[round(float(x), 6), round(float(y), 6)]]})
        for x, y in rng.uniform(0.05, 0.95, size=(count, 2))
    ]


def _percentiles(latencies: list) -> dict:
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
        "max_ms": round(float(arr.max()) * 1e3, 3),
    }


def run_throughput_arm(
    n: int,
    coalesce: bool,
    clients: int,
    requests_per_client: int,
    mutations: int,
) -> dict:
    """One mixed read/write arm; returns QPS + latency + verification."""
    products, customers = _stores(n)
    query = np.quantile(products, 0.5, axis=0)
    questions = min(12, customers.shape[0])
    log = _mutation_log(mutations)
    responses: list = []
    latencies: list = []

    async def scenario() -> dict:
        engine = WhyNotEngine(products, customers=customers, backend=BACKEND)
        config = ServeConfig(
            coalesce=coalesce,
            coalesce_window_s=0.002,
            max_inflight=max(16, clients),
            max_queue=4 * max(16, clients),
            default_deadline_s=120.0,
            executor_threads=2,
        )
        service = WhyNotService(engine, config)
        async with service:
            loop = asyncio.get_running_loop()

            async def client(cid: int) -> None:
                for i in range(requests_per_client):
                    t0 = loop.time()
                    out = await service.why_not(
                        (cid + i) % questions, query, deadline_s=120
                    )
                    latencies.append(loop.time() - t0)
                    responses.append(out)

            async def writer() -> None:
                for op, payload in log:
                    await asyncio.sleep(0.004)
                    await service.mutate(op, **payload)

            wall0 = time.perf_counter()
            await asyncio.gather(
                *[client(c) for c in range(clients)], writer()
            )
            wall = time.perf_counter() - wall0
            counters = {
                "requests": int(service.m_requests.value),
                "completed": int(service.m_completed.value),
                "coalesced": int(service.m_coalesced.value),
                "batches": int(service.m_batches.value),
                "shed": int(service.m_shed_queue.value)
                + int(service.m_shed_deadline.value),
                "drains": int(service.m_drains.value),
                "pool_hits": int(service.pool.hits.value),
            }
        return {"wall_s": wall, "counters": counters}

    run = asyncio.run(scenario())

    # Bit-identity verification: replay the mutation log prefix on a
    # twin per served epoch and compare canonical JSON forms.
    twins: dict[int, WhyNotEngine] = {}
    divergent = 0
    for out in responses:
        epoch = out["epoch"]
        if epoch not in twins:
            twin = WhyNotEngine(
                products.copy(), customers=customers.copy(), backend=BACKEND
            )
            for op, payload in log[:epoch]:
                getattr(twin, op)(**payload)
            twins[epoch] = twin
        direct = canonical_json(
            serialize_answer(
                answer_why_not(
                    twins[epoch], out["result"]["why_not"]["position"], query
                )
            )
        )
        if canonical_json(out["result"]) != direct:
            divergent += 1
    for twin in twins.values():
        twin.close()
    total = clients * requests_per_client
    assert len(responses) == total, (len(responses), total)
    assert divergent == 0, f"{divergent}/{total} served responses diverged"
    counters = run["counters"]
    assert counters["shed"] == 0, counters

    return {
        "arm": "coalesced" if coalesce else "per-request",
        "n": n,
        "clients": clients,
        "requests": total,
        "mutations": mutations,
        "wall_s": round(run["wall_s"], 4),
        "qps": round(total / run["wall_s"], 1),
        **_percentiles(latencies),
        "counters": counters,
        "verified_bit_identical": total,
        "divergent": 0,
    }


def run_shedding_arm(n: int, flood: int) -> dict:
    """Overload a tiny admission envelope; overload must resolve fast
    (429/503), never deadlock, and completed requests stay correct."""
    products, customers = _stores(n)
    query = np.quantile(products, 0.5, axis=0)
    outcomes = {"completed": 0, "shed_429": 0, "shed_503": 0}
    resolution_latencies: list = []

    async def scenario() -> dict:
        engine = WhyNotEngine(products, customers=customers, backend=BACKEND)
        config = ServeConfig(
            coalesce=False,
            max_inflight=1,
            max_queue=4,
            default_deadline_s=0.25,
            executor_threads=1,
        )
        service = WhyNotService(engine, config)
        async with service:
            loop = asyncio.get_running_loop()

            async def request(i: int) -> None:
                t0 = loop.time()
                try:
                    await service.why_not(i % 8, query)
                    outcomes["completed"] += 1
                except ShedError as exc:
                    outcomes["shed_429" if exc.status == 429 else "shed_503"] += 1
                finally:
                    resolution_latencies.append(loop.time() - t0)

            wall0 = time.perf_counter()
            await asyncio.gather(*[request(i) for i in range(flood)])
            wall = time.perf_counter() - wall0
            queue_depth = int(service.g_queue_depth.value)
        return {"wall_s": wall, "queue_depth_after": queue_depth}

    run = asyncio.run(scenario())
    resolved = sum(outcomes.values())
    assert resolved == flood, (resolved, flood)
    assert outcomes["completed"] >= 1, outcomes
    assert outcomes["shed_429"] + outcomes["shed_503"] >= 1, (
        f"flood of {flood} against a 1-slot/4-queue envelope shed nothing: "
        f"{outcomes}"
    )
    assert run["queue_depth_after"] == 0, run
    stats = _percentiles(resolution_latencies)
    # Bounded-p99 claim: every outcome (answer or refusal) resolves
    # within a small multiple of the per-request deadline.
    assert stats["max_ms"] < 5_000.0, stats
    return {
        "arm": "shedding",
        "n": n,
        "flood": flood,
        "envelope": {"max_inflight": 1, "max_queue": 4, "deadline_s": 0.25},
        "wall_s": round(run["wall_s"], 4),
        **outcomes,
        "resolution_" + "p50_ms": stats["p50_ms"],
        "resolution_" + "p99_ms": stats["p99_ms"],
        "resolution_" + "max_ms": stats["max_ms"],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=2_000)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests-per-client", type=int, default=12)
    parser.add_argument("--mutations", type=int, default=4)
    parser.add_argument("--flood", type=int, default=24)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny size, 2 clients, identity assertions only (no speed gate)",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.size = min(args.size, 300)
        args.clients = 2
        args.requests_per_client = min(args.requests_per_client, 4)
        args.mutations = min(args.mutations, 1)
        args.flood = min(args.flood, 10)

    arms = []
    for coalesce in (True, False):
        arm = run_throughput_arm(
            args.size, coalesce, args.clients,
            args.requests_per_client, args.mutations,
        )
        arms.append(arm)
        print(
            f"{arm['arm']:>12}: {arm['requests']} requests / "
            f"{arm['clients']} clients (+{arm['mutations']} writes) -> "
            f"{arm['qps']} qps, p50 {arm['p50_ms']}ms, p99 {arm['p99_ms']}ms, "
            f"coalesced {arm['counters']['coalesced']}, "
            f"{arm['verified_bit_identical']} verified bit-identical"
        )
    coalesced, per_request = arms
    speedup = round(coalesced["qps"] / per_request["qps"], 3)
    print(f"coalescing speedup at concurrency {args.clients}: {speedup}x")
    if not args.smoke:
        assert args.clients >= 16, args.clients
        assert coalesced["qps"] > per_request["qps"], (
            f"coalescing lost at concurrency {args.clients}: "
            f"{coalesced['qps']} vs {per_request['qps']} qps"
        )

    shed = run_shedding_arm(args.size, args.flood)
    print(
        f"    shedding: flood {shed['flood']} -> {shed['completed']} served, "
        f"{shed['shed_429']}x429 + {shed['shed_503']}x503 refused, "
        f"resolution p99 {shed['resolution_p99_ms']}ms (bounded, no deadlock)"
    )

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": (
            "serving layer: sustained QPS + tail latency under mixed "
            "read/write, coalescing on/off, admission-control shedding"
        ),
        "methodology": "see docs/API.md section 'Serving'",
        "seed": BENCH_SEED,
        "backend": BACKEND,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "verification": (
            "every served response compared bit-identically (canonical "
            "JSON) against a direct engine call on a twin replayed to "
            "the response's served epoch; any divergence fails the run"
        ),
        "coalescing_speedup": speedup,
        "results": arms,
        "shedding": shed,
    }
    out = args.out or (
        Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    )
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
