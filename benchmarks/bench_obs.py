"""Observability pricing: the per-query journal and worker telemetry.

The journal (``journal=True``) takes two counter snapshots and appends
one ring record per executed plan; the drift sentinel aggregates those
records after the fact.  Both must stay invisible on the serving path:

* ``journal A/B`` — the same warm safe-region workload (every cache
  layer warmed before timing) on two traced engines, journal off vs
  journal on, interleaved best-of-3 with an off/off repeat pair whose
  spread is the noise floor.  The documented bound: journal + one
  drift aggregation add <2% to the warm workload.
* ``telemetry A/B`` — the same sharded probe set through a serial
  :class:`~repro.shard.executor.ShardExecutor` with worker telemetry
  off vs on (local counters + snapshot merge per task), plus a
  serial-vs-process equality fingerprint of the merged worker totals —
  the balance invariant the ``obs`` CLI experiment asserts.

Entry points::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full, 4k
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI, 400
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box

BENCH_SEED = 7


def _dataset(n: int, d: int, seed: int = BENCH_SEED) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, d))


def _probes(d: int, count: int, seed: int = BENCH_SEED + 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.25, 0.75, size=(count, d))


def _engine(points: np.ndarray, config: WhyNotConfig) -> WhyNotEngine:
    d = points.shape[1]
    return WhyNotEngine(
        points, backend="scan", config=config, bounds=Box(np.zeros(d), np.ones(d))
    )


def _warm_workload(
    engine: WhyNotEngine, warmers: np.ndarray, probes: np.ndarray
) -> float:
    """Warm the engine (index, tile summaries, plan cache, DSL cache)
    on the warm-up probes, then time fresh safe-region + reverse-skyline
    queries — real per-query work on warm structures, the serving shape
    the journal must not tax."""
    for q in warmers:
        engine.reverse_skyline(q)
        engine.safe_region(q)
    t0 = time.perf_counter()
    for q in probes:
        engine.reverse_skyline(q)
        engine.safe_region(q)
    return time.perf_counter() - t0


def run_journal_ab(n: int, d: int, probe_count: int, rounds: int) -> dict:
    """Warm-workload cost of journal recording + one drift aggregation.

    Both arms trace (the journal rides on the traced registry); the
    only difference is ``journal=True`` and the final
    ``engine.drift_report()`` the journaled arm pays.  Interleaved
    best-of-3; the off/off spread is the noise floor.
    """
    points = _dataset(n, d)
    warmers = _probes(d, probe_count)
    probes = _probes(d, probe_count * rounds, seed=BENCH_SEED + 2)
    off, off2, on = [], [], []
    journaled_records = 0
    for _ in range(3):
        engine = _engine(points, WhyNotConfig(trace=True))
        off.append(_warm_workload(engine, warmers, probes))
        engine = _engine(
            points,
            WhyNotConfig(trace=True, journal=True, journal_capacity=4096),
        )
        t = _warm_workload(engine, warmers, probes)
        t0 = time.perf_counter()
        report = engine.drift_report()
        t += time.perf_counter() - t0
        assert len(report.operators) > 0, "drift sentinel saw no operators"
        journaled_records = len(engine.journal)
        on.append(t)
        engine = _engine(points, WhyNotConfig(trace=True))
        off2.append(_warm_workload(engine, warmers, probes))
    disabled_s, disabled2_s, enabled_s = min(off), min(off2), min(on)
    base = min(disabled_s, disabled2_s)
    return {
        "n": n,
        "d": d,
        "probes": probe_count,
        "rounds": rounds,
        "journal_records": journaled_records,
        "journal_off_s": round(disabled_s, 6),
        "journal_off_repeat_s": round(disabled2_s, 6),
        "journal_on_s": round(enabled_s, 6),
        "off_ab_noise_pct": round(
            100.0 * abs(disabled_s - disabled2_s) / base, 2
        ),
        "journal_overhead_pct": round(100.0 * (enabled_s - base) / base, 2),
        "bound": "journal + drift aggregation must add <2% to the warm "
        "safe-region workload",
    }


def run_telemetry_ab(n: int, d: int, probe_count: int, rounds: int) -> dict:
    """Serial-executor cost of worker counter telemetry, plus the
    serial-vs-process merged-total equality fingerprint."""
    from repro.kernels.membership import KernelCounters
    from repro.shard.executor import ShardExecutor

    points = _dataset(n, d)
    probes = _probes(d, probe_count)
    rows = np.arange(points.shape[0])

    def timed(telemetry: bool) -> float:
        with ShardExecutor(
            points, shards=2, backend="serial", telemetry=telemetry
        ) as ex:
            for q in probes:  # warm the partition paths
                ex.membership_rows(rows, q, "strict")
            t0 = time.perf_counter()
            for _ in range(rounds):
                for q in probes:
                    ex.membership_rows(rows, q, "strict")
                    ex.lambda_rows(rows, q, "strict")
            return time.perf_counter() - t0

    off = min(timed(False) for _ in range(3))
    on = min(timed(True) for _ in range(3))

    def totals(backend: str) -> dict:
        kc = KernelCounters()
        with ShardExecutor(
            points, shards=2, backend=backend, kernel_counters=kc
        ) as ex:
            for q in probes:
                ex.membership_rows(rows, q, "strict")
                ex.lambda_rows(rows, q, "strict")
            return {k: dict(v) for k, v in ex.worker_totals.items()}

    serial_totals = totals("serial")
    process_totals = totals("process")
    assert serial_totals == process_totals, (
        "worker-telemetry balance broken: serial and process backends "
        f"merged different totals: {serial_totals} != {process_totals}"
    )
    return {
        "n": n,
        "d": d,
        "probes": probe_count,
        "rounds": rounds,
        "telemetry_off_s": round(off, 6),
        "telemetry_on_s": round(on, 6),
        "telemetry_overhead_pct": round(100.0 * (on - off) / off, 2),
        "balance": "serial == process merged worker totals (asserted)",
        "worker_totals": serial_totals,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=4_000)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--probes", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny size, equality assertions only (no overhead gates)",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.size = min(args.size, 400)
        args.rounds = min(args.rounds, 5)

    journal = run_journal_ab(args.size, args.dim, args.probes, args.rounds)
    print(
        f"journal A/B n={journal['n']} d={journal['d']} "
        f"({journal['rounds']} warm rounds x {journal['probes']} probes, "
        f"{journal['journal_records']} records): "
        f"off {journal['journal_off_s']:.4f}s vs on "
        f"{journal['journal_on_s']:.4f}s "
        f"(+{journal['journal_overhead_pct']}%), off/off noise "
        f"{journal['off_ab_noise_pct']}%"
    )
    telemetry = run_telemetry_ab(
        args.size, args.dim, args.probes, max(2, args.rounds // 4)
    )
    print(
        f"telemetry A/B: off {telemetry['telemetry_off_s']:.4f}s vs on "
        f"{telemetry['telemetry_on_s']:.4f}s "
        f"(+{telemetry['telemetry_overhead_pct']}%); "
        "serial == process merged totals"
    )
    if not args.smoke:
        assert journal["journal_overhead_pct"] < 2.0, journal
        assert journal["off_ab_noise_pct"] < 2.0, journal

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import bench_environment

    payload = {
        "benchmark": "observability: per-query journal + shard worker telemetry overhead",
        "methodology": "see EXPERIMENTS.md, section 'Observability overhead'",
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "journal_ab": journal,
        "telemetry_ab": telemetry,
    }
    out = args.out or Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
