"""Safe-region construction: object-per-box loop vs the array engine
with the DSL cache.

Two entry points:

* ``pytest benchmarks/bench_safe_region.py --benchmark-only`` —
  pytest-benchmark timings on scaled-down sizes;
* ``PYTHONPATH=src python benchmarks/bench_safe_region.py --sizes 2000 10000``
  — standalone runner writing the ``BENCH_safe_region.json`` artifact
  (methodology in EXPERIMENTS.md, section 'Safe-region engine sweep').
  CI smokes the standalone runner on a tiny size: every row is guarded
  by *exact* equality assertions (identical boxes, bit-identical area,
  identical containment verdicts) between the array engine and the
  pure-Python oracle, so any divergence fails the build.

Three measurements per size:

* ``oracle_s`` — ``compute_safe_region_oracle``: the pre-refactor
  object-per-box algebra (nested-loop intersect, O(k²) simplify,
  recursive measure), recomputing every DSL.  This is the "before".
* ``array_cold_s`` — the array engine with no cache: what a fresh engine
  pays on its very first construction.
* ``array_warm_s`` — the array engine reading member staircase regions
  through a warmed :class:`DSLCache`: what every construction after the
  first pays (the production steady state — the cache persists on the
  engine across ``safe_region`` / ``modify_both`` / batch calls).

plus a *workload* row — ``--workload`` jittered queries served
sequentially, old path (oracle, no cache) vs new path (array engine, one
persistent cache) — the end-to-end number, with the measured DSL-cache
hit rate.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.dsl_cache import DSLCache
from repro.core.safe_region import (
    SafeRegionStats,
    compute_safe_region,
    compute_safe_region_oracle,
)
from repro.geometry.box import Box
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive

BENCH_SEED = 7


def _dataset(n: int, d: int, seed: int = BENCH_SEED):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, d))
    q = rng.uniform(0.25, 0.75, size=d)
    return pts, q


def _bounds(d: int) -> Box:
    return Box(np.zeros(d), np.ones(d))


def _time(fn, *args, repeats: int = 3, **kwargs) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_identical(fast, slow, d: int, context: str) -> None:
    """Array engine vs oracle: same boxes, bit-identical area, identical
    containment verdicts.  Exact — no tolerance."""
    fast_boxes = [(b.lo.tolist(), b.hi.tolist()) for b in fast.region.boxes]
    slow_boxes = [(b.lo.tolist(), b.hi.tolist()) for b in slow.region.boxes]
    assert fast_boxes == slow_boxes, f"{context}: box lists diverge"
    assert fast.area() == slow.area(), (
        f"{context}: area diverges {fast.area()!r} != {slow.area()!r}"
    )
    probes = np.random.default_rng(BENCH_SEED + 1).uniform(0, 1, size=(200, d))
    for p in probes:
        assert fast.contains(p) == slow.contains(p), (
            f"{context}: containment diverges at {p}"
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (scaled-down; the standalone runner
# below covers the paper-scale sweep).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=[2000])
def sr_data(request):
    pts, q = _dataset(request.param, 2)
    idx = ScanIndex(pts)
    rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
    return idx, pts, q, rsl


def test_safe_region_oracle_loop(benchmark, sr_data):
    idx, pts, q, rsl = sr_data
    result = benchmark(
        compute_safe_region_oracle, idx, pts, q, rsl, _bounds(2),
        self_exclude=True,
    )
    benchmark.extra_info["rsl_size"] = int(rsl.size)
    benchmark.extra_info["boxes"] = len(result.region)


def test_safe_region_array_cold(benchmark, sr_data):
    idx, pts, q, rsl = sr_data
    result = benchmark(
        compute_safe_region, idx, pts, q, rsl, _bounds(2), self_exclude=True
    )
    benchmark.extra_info["boxes"] = len(result.region)


def test_safe_region_array_warm(benchmark, sr_data):
    idx, pts, q, rsl = sr_data
    cache = DSLCache(idx, pts, self_exclude=True)
    compute_safe_region(
        idx, pts, q, rsl, _bounds(2), self_exclude=True, dsl_cache=cache
    )
    result = benchmark(
        compute_safe_region, idx, pts, q, rsl, _bounds(2),
        self_exclude=True, dsl_cache=cache,
    )
    benchmark.extra_info["cache_hit_rate"] = round(cache.stats.hit_rate, 3)
    benchmark.extra_info["boxes"] = len(result.region)


def test_safe_region_paths_agree(sr_data):
    idx, pts, q, rsl = sr_data
    fast = compute_safe_region(idx, pts, q, rsl, _bounds(2), self_exclude=True)
    slow = compute_safe_region_oracle(
        idx, pts, q, rsl, _bounds(2), self_exclude=True
    )
    _assert_identical(fast, slow, 2, "pytest-agree")


# ----------------------------------------------------------------------
# Standalone runner -> BENCH_safe_region.json
# ----------------------------------------------------------------------
def run_size(n: int, d: int, repeats: int, oracle_repeats: int) -> dict:
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    bounds = _bounds(d)
    rsl = reverse_skyline_naive(
        idx, pts, q, self_exclude=True, batch_kernels=True
    )

    oracle_s, oracle_sr = _time(
        compute_safe_region_oracle, idx, pts, q, rsl, bounds,
        self_exclude=True, repeats=oracle_repeats,
    )
    cold_s, cold_sr = _time(
        compute_safe_region, idx, pts, q, rsl, bounds,
        self_exclude=True, repeats=repeats,
    )
    cache = DSLCache(idx, pts, self_exclude=True)
    compute_safe_region(
        idx, pts, q, rsl, bounds, self_exclude=True, dsl_cache=cache
    )  # warm-up fill
    warm_stats = SafeRegionStats()
    warm_s, warm_sr = _time(
        compute_safe_region, idx, pts, q, rsl, bounds,
        self_exclude=True, dsl_cache=cache, stats=warm_stats,
        repeats=repeats,
    )
    _assert_identical(cold_sr, oracle_sr, d, f"n={n} cold")
    _assert_identical(warm_sr, oracle_sr, d, f"n={n} warm")
    return {
        "n": n,
        "m": n,
        "d": d,
        "rsl_size": int(rsl.size),
        "boxes": len(oracle_sr.region),
        "area": oracle_sr.area(),
        "oracle_s": round(oracle_s, 6),
        "array_cold_s": round(cold_s, 6),
        "array_warm_s": round(warm_s, 6),
        "speedup_cold": round(oracle_s / cold_s, 2),
        "speedup_warm": round(oracle_s / warm_s, 2),
        "warm_cache_hit_rate": round(warm_stats.cache_hit_rate, 4),
    }


def run_workload(n: int, d: int, queries: int) -> dict:
    """Serve ``queries`` jittered queries end to end: oracle per call
    (the old engine recomputed everything per call) vs array engine with
    one persistent DSL cache (the new engine's steady state)."""
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    bounds = _bounds(d)
    rng = np.random.default_rng(BENCH_SEED + 2)
    jitter = rng.uniform(-1e-9, 1e-9, size=(queries, d))
    workload = np.clip(q[None, :] + jitter, 0.0, 1.0)
    rsls = [
        reverse_skyline_naive(idx, pts, wq, self_exclude=True, batch_kernels=True)
        for wq in workload
    ]

    t0 = time.perf_counter()
    old_results = [
        compute_safe_region_oracle(
            idx, pts, wq, rsl, bounds, self_exclude=True
        )
        for wq, rsl in zip(workload, rsls)
    ]
    old_total = time.perf_counter() - t0

    cache = DSLCache(idx, pts, self_exclude=True)
    t0 = time.perf_counter()
    new_results = [
        compute_safe_region(
            idx, pts, wq, rsl, bounds, self_exclude=True, dsl_cache=cache
        )
        for wq, rsl in zip(workload, rsls)
    ]
    new_total = time.perf_counter() - t0

    for i, (old, new) in enumerate(zip(old_results, new_results)):
        _assert_identical(new, old, d, f"workload n={n} query {i}")
    return {
        "n": n,
        "m": n,
        "d": d,
        "queries": queries,
        "rsl_size": int(rsls[0].size),
        "oracle_total_s": round(old_total, 6),
        "array_total_s": round(new_total, 6),
        "workload_speedup": round(old_total / new_total, 2),
        "cache_hit_rate": round(cache.stats.hit_rate, 4),
    }


def run_rsl_sweep(n: int, d: int, member_counts: list[int], repeats: int) -> list[dict]:
    """Stress the region *algebra* at controlled |RSL|: intersect the
    anti-dominance regions of ``k`` random customers (Algorithm 3 accepts
    any member set; the geometry workload is identical to a real RSL of
    that size, which uniform data rarely produces beyond ~15 members)."""
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    bounds = _bounds(d)
    rng = np.random.default_rng(BENCH_SEED + 3)
    rows = []
    for k in member_counts:
        members = np.sort(
            rng.choice(n, size=min(k, n), replace=False)
        ).astype(np.int64)
        oracle_s, oracle_sr = _time(
            compute_safe_region_oracle, idx, pts, q, members, bounds,
            self_exclude=True, repeats=1,
        )
        cache = DSLCache(idx, pts, self_exclude=True)
        compute_safe_region(
            idx, pts, q, members, bounds, self_exclude=True, dsl_cache=cache
        )
        warm_s, warm_sr = _time(
            compute_safe_region, idx, pts, q, members, bounds,
            self_exclude=True, dsl_cache=cache, repeats=repeats,
        )
        _assert_identical(warm_sr, oracle_sr, d, f"rsl_sweep k={k}")
        rows.append(
            {
                "n": n,
                "d": d,
                "rsl_size": int(members.size),
                "boxes": len(oracle_sr.region),
                "oracle_s": round(oracle_s, 6),
                "array_warm_s": round(warm_s, 6),
                "speedup_warm": round(oracle_s / warm_s, 2),
            }
        )
    return rows


def run_m_sweep(n: int, d: int, m_values: list[int], repeats: int) -> list[dict]:
    """Bichromatic m sweep: fixed product set, varying customer count."""
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    bounds = _bounds(d)
    rng = np.random.default_rng(BENCH_SEED + 4)
    rows = []
    for m in m_values:
        customers = rng.uniform(0.0, 1.0, size=(m, d))
        rsl = reverse_skyline_naive(
            idx, customers, q, self_exclude=False, batch_kernels=True
        )
        oracle_s, oracle_sr = _time(
            compute_safe_region_oracle, idx, customers, q, rsl, bounds,
            repeats=1,
        )
        cache = DSLCache(idx, customers)
        compute_safe_region(
            idx, customers, q, rsl, bounds, dsl_cache=cache
        )
        warm_s, warm_sr = _time(
            compute_safe_region, idx, customers, q, rsl, bounds,
            dsl_cache=cache, repeats=repeats,
        )
        _assert_identical(warm_sr, oracle_sr, d, f"m_sweep m={m}")
        rows.append(
            {
                "n": n,
                "m": m,
                "d": d,
                "rsl_size": int(rsl.size),
                "oracle_s": round(oracle_s, 6),
                "array_warm_s": round(warm_s, 6),
                "speedup_warm": round(oracle_s / warm_s, 2),
            }
        )
    return rows


def instrumented_pass(n: int, d: int) -> dict:
    """One fully instrumented construction at the given size, run
    *outside* the timed loops: region-algebra counters (via
    ``observe_region_ops``), the per-construction :class:`SafeRegionStats`,
    and the DSL-cache hit/miss ledger for a cold-then-warm pair.  Gives
    the artifact a work-done fingerprint next to the wall times."""
    from repro.geometry.region_array import observe_region_ops
    from repro.obs import MetricsRegistry

    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    bounds = _bounds(d)
    rsl = reverse_skyline_naive(
        idx, pts, q, self_exclude=True, batch_kernels=True
    )
    registry = MetricsRegistry()
    cache = DSLCache(idx, pts, self_exclude=True)
    stats = SafeRegionStats()
    with observe_region_ops(registry):
        compute_safe_region(
            idx, pts, q, rsl, bounds, self_exclude=True,
            dsl_cache=cache, stats=stats,
        )  # cold
        warm_stats = SafeRegionStats()
        compute_safe_region(
            idx, pts, q, rsl, bounds, self_exclude=True,
            dsl_cache=cache, stats=warm_stats,
        )  # warm
    return {
        "n": n,
        "m": n,
        "d": d,
        "rsl_size": int(rsl.size),
        "region_counters": registry.snapshot(),
        "cold_stats": stats.snapshot(),
        "warm_stats": warm_stats.snapshot(),
        "dsl_cache": cache.stats.snapshot(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[2000, 4000, 10000]
    )
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--oracle-repeats", type=int, default=1,
        help="repeats for the slow oracle path (best-of)",
    )
    parser.add_argument(
        "--workload", type=int, default=24,
        help="jittered queries in the end-to-end workload row",
    )
    parser.add_argument(
        "--rsl-sweep", type=int, nargs="*", default=[4, 8, 16, 32],
        help="member counts for the |RSL| algebra sweep (largest size)",
    )
    parser.add_argument(
        "--m-sweep", type=int, nargs="*", default=[1000, 4000],
        help="customer counts for the bichromatic m sweep (largest size)",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    results = []
    for n in args.sizes:
        row = run_size(n, args.dim, args.repeats, args.oracle_repeats)
        results.append(row)
        print(
            f"n=m={n} d={args.dim} |RSL|={row['rsl_size']}: "
            f"oracle {row['oracle_s']:.4f}s, "
            f"array cold {row['array_cold_s']:.4f}s "
            f"({row['speedup_cold']}x), "
            f"warm {row['array_warm_s']:.4f}s ({row['speedup_warm']}x)"
        )

    workloads = []
    for n in args.sizes:
        row = run_workload(n, args.dim, args.workload)
        workloads.append(row)
        print(
            f"workload n=m={n} ({row['queries']} queries): "
            f"oracle {row['oracle_total_s']:.3f}s, "
            f"array+cache {row['array_total_s']:.3f}s "
            f"({row['workload_speedup']}x, "
            f"hit rate {row['cache_hit_rate']:.2%})"
        )
        if args.workload >= 21:
            # (R-1)/(R+1) >= 0.9 needs R >= 19; leave headroom for the
            # occasional member-set difference between jittered queries.
            assert row["cache_hit_rate"] >= 0.9, row

    biggest = max(args.sizes)
    rsl_rows = run_rsl_sweep(biggest, args.dim, args.rsl_sweep, args.repeats)
    for row in rsl_rows:
        print(
            f"rsl_sweep |RSL|={row['rsl_size']}: oracle {row['oracle_s']:.4f}s, "
            f"array warm {row['array_warm_s']:.4f}s ({row['speedup_warm']}x)"
        )
    m_rows = run_m_sweep(biggest, args.dim, args.m_sweep, args.repeats)
    for row in m_rows:
        print(
            f"m_sweep m={row['m']}: oracle {row['oracle_s']:.4f}s, "
            f"array warm {row['array_warm_s']:.4f}s ({row['speedup_warm']}x)"
        )

    from conftest import bench_environment

    payload = {
        "benchmark": "safe-region construction: object loop vs array engine + DSL cache",
        "methodology": "see EXPERIMENTS.md, section 'Safe-region engine sweep'",
        "seed": BENCH_SEED,
        "sr_chunk_size": WhyNotConfig().sr_chunk_size,
        "divergence_check": "exact (boxes, area, containment) — asserted per row",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "obs": instrumented_pass(biggest, args.dim),
        "results": results,
        "workloads": workloads,
        "rsl_sweep": rsl_rows,
        "m_sweep": m_rows,
    }
    out = args.out or Path(__file__).resolve().parent.parent / "BENCH_safe_region.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
