"""Figure 15 — execution time of MWP, MQP, SR and MWQ.

One benchmark per phase over the same workload; the paper's shapes are
asserted at the end: MWP and MQP are orders of magnitude cheaper than
MWQ, whose cost is dominated by the safe-region construction.
"""

from __future__ import annotations

import time

from conftest import fresh_engine_like


def test_fig15_mwp_phase(benchmark, cardb_engine, cardb_workload):
    benchmark(
        lambda: [
            cardb_engine.modify_why_not_point(wq.why_not_position, wq.query)
            for wq in cardb_workload
        ]
    )


def test_fig15_mqp_phase(benchmark, cardb_engine, cardb_workload):
    benchmark(
        lambda: [
            cardb_engine.modify_query_point(wq.why_not_position, wq.query)
            for wq in cardb_workload
        ]
    )


def test_fig15_sr_phase(benchmark, cardb_engine, cardb_workload):
    def run():
        engine = fresh_engine_like(cardb_engine)
        for wq in cardb_workload:
            engine.safe_region(wq.query)

    benchmark(run)


def test_fig15_mwq_phase(benchmark, cardb_engine, cardb_workload):
    def run():
        engine = fresh_engine_like(cardb_engine)
        for wq in cardb_workload:
            engine.modify_both(wq.why_not_position, wq.query)

    benchmark(run)


def test_fig15_shapes(benchmark, cardb_engine, cardb_workload):
    """SR dominates MWQ; MWP/MQP are far cheaper (the figure's story)."""

    def run():
        engine = fresh_engine_like(cardb_engine)
        timings = {"MWP": 0.0, "MQP": 0.0, "SR": 0.0, "MWQ_rest": 0.0}
        for wq in cardb_workload:
            t0 = time.perf_counter()
            engine.modify_why_not_point(wq.why_not_position, wq.query)
            timings["MWP"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            engine.modify_query_point(wq.why_not_position, wq.query)
            timings["MQP"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            engine.safe_region(wq.query)
            timings["SR"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            engine.modify_both(wq.why_not_position, wq.query)
            timings["MWQ_rest"] += time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)
    mwq_total = timings["SR"] + timings["MWQ_rest"]
    benchmark.extra_info["seconds"] = {
        k: float(f"{v:.6g}") for k, v in timings.items()
    }
    assert timings["SR"] > timings["MWP"]
    assert mwq_total > timings["MWP"]
    assert mwq_total > timings["MQP"]
    # "most of the execution time of MWQ is spent computing SR(q)".
    assert timings["SR"] >= 0.5 * mwq_total
