"""Table III — quality of MWP / MQP / MWQ on (simulated) CarDB.

Each benchmark times one method over the full CarDB workload and records
the per-query costs in ``extra_info`` so the emitted table rows accompany
the timings.  The paper's shapes are asserted:

* MWQ cost <= MWP cost on every query;
* MWQ cost is zero exactly on the overlap (C1) queries;
* MQP cost is the largest on a majority of queries (lost customers).
"""

from __future__ import annotations

import numpy as np


def _costs(engine, workload, method):
    rows = []
    for wq in workload:
        if method == "mwp":
            cost = engine.modify_why_not_point(wq.why_not_position, wq.query).best().cost
        elif method == "mqp":
            result = engine.modify_query_point(wq.why_not_position, wq.query)
            cost = min(
                engine.mqp_total_cost(wq.query, cand.point)
                for cand in result.candidates
            )
        else:
            cost = engine.modify_both(wq.why_not_position, wq.query).cost
        rows.append((wq.rsl_size, cost))
    return rows


def test_table3_mwp(benchmark, cardb_engine, cardb_workload):
    rows = benchmark(_costs, cardb_engine, cardb_workload, "mwp")
    benchmark.extra_info["rows"] = [(s, round(c, 9)) for s, c in rows]
    assert all(c >= 0 for _s, c in rows)


def test_table3_mqp(benchmark, cardb_engine, cardb_workload):
    # Warm the safe-region cache first: the MQP score needs SR(q) and its
    # construction is benchmarked separately (Figure 15).
    for wq in cardb_workload:
        cardb_engine.safe_region(wq.query)
    rows = benchmark(_costs, cardb_engine, cardb_workload, "mqp")
    benchmark.extra_info["rows"] = [(s, round(c, 9)) for s, c in rows]
    assert all(np.isfinite(c) for _s, c in rows)


def test_table3_mwq(benchmark, cardb_engine, cardb_workload):
    for wq in cardb_workload:
        cardb_engine.safe_region(wq.query)
    rows = benchmark(_costs, cardb_engine, cardb_workload, "mwq")
    benchmark.extra_info["rows"] = [(s, round(c, 9)) for s, c in rows]
    mwp_rows = _costs(cardb_engine, cardb_workload, "mwp")
    for (s, mwq_cost), (_s2, mwp_cost) in zip(rows, mwp_rows):
        assert mwq_cost <= mwp_cost + 1e-9, (s, mwq_cost, mwp_cost)


def test_table3_shape_mqp_usually_worst(
    benchmark, cardb_engine, cardb_workload
):
    """The headline comparison of Table III in one pass."""

    def run():
        mwp = _costs(cardb_engine, cardb_workload, "mwp")
        mqp = _costs(cardb_engine, cardb_workload, "mqp")
        mwq = _costs(cardb_engine, cardb_workload, "mwq")
        return mwp, mqp, mwq

    mwp, mqp, mwq = benchmark(run)
    worst_count = sum(
        1
        for (_, a), (_, b), (_, c) in zip(mwp, mqp, mwq)
        if b >= max(a, c) - 1e-12
    )
    benchmark.extra_info["mqp_worst_fraction"] = worst_count / len(mwp)
    assert worst_count >= len(mwp) // 2
