"""Ablation: BBRS (global-skyline pruning) vs naive reverse skyline.

The pruning is what makes the monochromatic reverse-skyline computation
tractable: only a handful of candidates survive per query instead of
running one window query per customer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.scan import ScanIndex
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.reverse import reverse_skyline_bbrs, reverse_skyline_naive

N = 5_000


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(21)
    pts = rng.uniform(0, 1, size=(N, 2))
    queries = pts[rng.integers(0, N, size=10)] + rng.normal(
        0, 0.01, size=(10, 2)
    )
    return ScanIndex(pts), pts, queries


def test_ablation_rsl_naive(benchmark, case):
    idx, pts, queries = case
    benchmark.pedantic(
        lambda: [
            reverse_skyline_naive(idx, pts, q, self_exclude=True)
            for q in queries[:2]
        ],
        rounds=2,
        iterations=1,
    )


def test_ablation_rsl_bbrs(benchmark, case):
    idx, pts, queries = case
    benchmark(
        lambda: [
            reverse_skyline_bbrs(idx, pts, q, self_exclude=True)
            for q in queries
        ]
    )


def test_ablation_pruning_rate(benchmark, case):
    """Candidates per query after pruning vs the full customer count."""
    _idx, pts, queries = case

    def run():
        return [
            global_skyline_candidates(pts, pts, q, self_exclude=True).size
            for q in queries
        ]

    sizes = benchmark(run)
    benchmark.extra_info["mean_candidates"] = float(np.mean(sizes))
    benchmark.extra_info["customers"] = N
    assert max(sizes) < N * 0.05  # >95% pruned on uniform data.


def test_ablation_bbrs_equals_naive(case):
    idx, pts, queries = case
    for q in queries[:3]:
        assert np.array_equal(
            reverse_skyline_naive(idx, pts, q, self_exclude=True),
            reverse_skyline_bbrs(idx, pts, q, self_exclude=True),
        )
