"""Micro-benchmark: per-customer loop vs the blocked batch kernels.

Two entry points:

* ``pytest benchmarks/bench_kernels.py --benchmark-only`` — pytest-benchmark
  timings on the scaled-down suite sizes;
* ``PYTHONPATH=src python benchmarks/bench_kernels.py --sizes 2000 10000``
  — standalone before/after run writing the ``BENCH_kernels.json``
  artifact (methodology in EXPERIMENTS.md).  The standalone runner is
  what CI smokes on a tiny size so the kernel path is always exercised.

Both compare the seed's per-customer reverse-skyline sweep (one window
query per customer through the index) against the vectorized kernels on
the same data, asserting identical output before recording a number.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.index.scan import ScanIndex
from repro.kernels.membership import (
    DEFAULT_BLOCK_SIZE,
    KernelCounters,
    batch_lambda_counts,
)
from repro.skyline.reverse import reverse_skyline_bbrs, reverse_skyline_naive

BENCH_SEED = 7


def _dataset(n: int, d: int, seed: int = BENCH_SEED):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, d))
    q = rng.uniform(0.25, 0.75, size=d)
    return pts, q


# ----------------------------------------------------------------------
# pytest-benchmark entry points (scaled-down sizes, like the rest of the
# suite; the standalone runner below covers the paper-scale sweep).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=[2000])
def sweep_data(request):
    pts, q = _dataset(request.param, 2)
    return ScanIndex(pts), pts, q


def test_kernel_sweep_naive_loop(benchmark, sweep_data):
    idx, pts, q = sweep_data
    result = benchmark(reverse_skyline_naive, idx, pts, q, self_exclude=True)
    benchmark.extra_info["rsl_size"] = int(result.size)


def test_kernel_sweep_batch(benchmark, sweep_data):
    idx, pts, q = sweep_data
    result = benchmark(
        reverse_skyline_naive,
        idx,
        pts,
        q,
        self_exclude=True,
        batch_kernels=True,
    )
    benchmark.extra_info["rsl_size"] = int(result.size)


def test_kernel_sweep_bbrs_batch(benchmark, sweep_data):
    idx, pts, q = sweep_data
    result = benchmark(
        reverse_skyline_bbrs,
        idx,
        pts,
        q,
        self_exclude=True,
        batch_kernels=True,
    )
    benchmark.extra_info["rsl_size"] = int(result.size)


def test_kernel_lambda_counts(benchmark, sweep_data):
    _idx, pts, q = sweep_data
    counts = benchmark(
        batch_lambda_counts,
        pts,
        pts,
        q,
        self_positions=np.arange(pts.shape[0], dtype=np.int64),
    )
    benchmark.extra_info["blocked_customers"] = int((counts > 0).sum())


def test_kernel_paths_agree(sweep_data):
    idx, pts, q = sweep_data
    oracle = reverse_skyline_naive(idx, pts, q, self_exclude=True)
    batch = reverse_skyline_naive(
        idx, pts, q, self_exclude=True, batch_kernels=True
    )
    assert np.array_equal(oracle, batch)


# ----------------------------------------------------------------------
# Standalone before/after runner -> BENCH_kernels.json
# ----------------------------------------------------------------------
def _time(fn, *args, repeats: int = 3, **kwargs) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_size(
    n: int,
    d: int,
    policy: DominancePolicy,
    block_size: int,
    loop_repeats: int,
) -> dict:
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    loop_naive, loop_members = _time(
        reverse_skyline_naive,
        idx,
        pts,
        q,
        policy,
        self_exclude=True,
        repeats=loop_repeats,
    )
    kernel_naive, kernel_members = _time(
        reverse_skyline_naive,
        idx,
        pts,
        q,
        policy,
        self_exclude=True,
        batch_kernels=True,
        block_size=block_size,
    )
    assert np.array_equal(loop_members, kernel_members), "kernel != oracle"
    loop_bbrs, bbrs_members = _time(
        reverse_skyline_bbrs,
        idx,
        pts,
        q,
        policy,
        self_exclude=True,
        repeats=loop_repeats,
    )
    kernel_bbrs, bbrs_kernel_members = _time(
        reverse_skyline_bbrs,
        idx,
        pts,
        q,
        policy,
        self_exclude=True,
        batch_kernels=True,
        block_size=block_size,
    )
    assert np.array_equal(bbrs_members, bbrs_kernel_members)
    kernel_counts, _counts = _time(
        batch_lambda_counts,
        pts,
        pts,
        q,
        policy,
        self_positions=np.arange(n, dtype=np.int64),
        block_size=block_size,
    )
    return {
        "n": n,
        "m": n,
        "d": d,
        "policy": policy.value,
        "rsl_size": int(kernel_members.size),
        "loop_naive_s": round(loop_naive, 6),
        "kernel_naive_s": round(kernel_naive, 6),
        "speedup_naive": round(loop_naive / kernel_naive, 2),
        "loop_bbrs_s": round(loop_bbrs, 6),
        "kernel_bbrs_s": round(kernel_bbrs, 6),
        "speedup_bbrs": round(loop_bbrs / kernel_bbrs, 2),
        "kernel_lambda_counts_s": round(kernel_counts, 6),
    }


def instrumented_pass(
    n: int, d: int, policy: DominancePolicy, block_size: int
) -> dict:
    """One counter-instrumented kernel pass at the given size, run
    *outside* the timed loops (counters cost a little per tile, so the
    timings above stay counter-free).  Records the work the blocked
    kernels actually did — tiles, product chunks, early exits, customers
    pruned — so regressions in pruning effectiveness show up in the
    artifact, not just regressions in wall time."""
    pts, q = _dataset(n, d)
    idx = ScanIndex(pts)
    counters = KernelCounters()
    members = reverse_skyline_naive(
        idx,
        pts,
        q,
        policy,
        self_exclude=True,
        batch_kernels=True,
        block_size=block_size,
        counters=counters,
    )
    return {
        "n": n,
        "m": n,
        "d": d,
        "rsl_size": int(members.size),
        "kernel_counters": counters.snapshot(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[2000, 4000, 10000]
    )
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    parser.add_argument(
        "--policy", choices=["weak", "strict"], default="weak"
    )
    parser.add_argument(
        "--loop-repeats",
        type=int,
        default=1,
        help="repeats for the slow per-customer loop (best-of)",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    policy = DominancePolicy(args.policy)
    results = []
    for n in args.sizes:
        row = run_size(n, args.dim, policy, args.block_size, args.loop_repeats)
        results.append(row)
        print(
            f"n=m={n} d={args.dim}: loop naive {row['loop_naive_s']:.3f}s, "
            f"kernel {row['kernel_naive_s']:.4f}s "
            f"({row['speedup_naive']:.1f}x); bbrs loop "
            f"{row['loop_bbrs_s']:.4f}s, kernel {row['kernel_bbrs_s']:.4f}s"
        )
    from conftest import bench_environment

    payload = {
        "benchmark": "batch membership kernels vs per-customer loop",
        "methodology": "see EXPERIMENTS.md, section 'Batch kernel sweep'",
        "seed": BENCH_SEED,
        "block_size": args.block_size,
        "policy": policy.value,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "env": bench_environment(),
        "obs": instrumented_pass(
            max(args.sizes), args.dim, policy, args.block_size
        ),
        "results": results,
    }
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
