"""Figure 14 — reverse-skyline size vs safe-region area on CarDB.

Benchmarks the exact safe-region construction and records the
(|RSL|, normalised area) series; asserts the paper's headline shape:
the safe region shrinks as the reverse skyline grows.
"""

from __future__ import annotations

import numpy as np

from conftest import fresh_engine_like


def test_fig14_safe_region_area_series(benchmark, cardb_engine, cardb_workload):
    universe = cardb_engine.bounds.volume()

    def run():
        engine = fresh_engine_like(cardb_engine)  # Cold SR cache.
        series = []
        for wq in cardb_workload:
            sr = engine.safe_region(wq.query)
            series.append((wq.rsl_size, sr.area() / universe))
        return series

    series = benchmark(run)
    benchmark.extra_info["series"] = [(s, float(f"{a:.6g}")) for s, a in series]
    sizes = np.array([s for s, _ in series], dtype=float)
    areas = np.array([a for _, a in series])
    assert np.all(areas >= 0) and np.all(areas <= 1.0)
    if len(series) >= 4:
        # Downward trend: no positive correlation, and the largest-RSL
        # query has a smaller region than the smallest-RSL one.
        assert np.corrcoef(sizes, areas)[0, 1] < 0.3
        assert areas[np.argmax(sizes)] <= areas[np.argmin(sizes)] + 1e-12


def test_fig14_single_safe_region_cost(benchmark, cardb_engine, cardb_workload):
    """Cost of one exact safe-region construction at the largest |RSL|."""
    biggest = max(cardb_workload, key=lambda wq: wq.rsl_size)

    def run():
        engine = fresh_engine_like(cardb_engine)
        return engine.safe_region(biggest.query).area()

    area = benchmark(run)
    benchmark.extra_info["rsl_size"] = biggest.rsl_size
    assert area >= 0.0
